"""Bulk-loaded R-tree over high-dimensional points.

Built STR-style by recursive median splits along the dimension of largest
spread, producing balanced leaves with minimum bounding rectangles (MBRs).
Two roles in the reproduction:

* the substrate of the multi-dimensional histogram mHC-R (paper
  Section 3.6.2): leaf MBRs become histogram buckets (exactly ``2**tau``
  leaves when built with ``n_leaves``);
* an exact tree index (``RTreeIndex``) whose kNN search feeds the shared
  cached-leaf machinery — and whose poor high-dimensional pruning is what
  Appendix B quantifies.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.core.cache import LeafNodeCache
from repro.index.treesearch import TreeSearchResult, cached_leaf_knn
from repro.storage.iostats import QueryIOTracker


@dataclass
class _Node:
    lo: np.ndarray
    hi: np.ndarray
    is_leaf: bool
    leaf_id: int = -1
    children: list["_Node"] = field(default_factory=list)


def _mindist(query: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> float:
    below = np.maximum(lo - query, 0.0)
    above = np.maximum(query - hi, 0.0)
    return float(np.sqrt(np.sum((below + above) ** 2)))


class RTree:
    """Balanced bulk-loaded R-tree.

    Exactly one of ``n_leaves`` (a power of two; used by mHC-R) or
    ``leaf_capacity`` (points per leaf; used by the index role) controls
    the partition depth.
    """

    def __init__(
        self,
        points: np.ndarray,
        n_leaves: int | None = None,
        leaf_capacity: int | None = None,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        if (n_leaves is None) == (leaf_capacity is None):
            raise ValueError("specify exactly one of n_leaves / leaf_capacity")
        if n_leaves is not None:
            if n_leaves < 1 or (n_leaves & (n_leaves - 1)):
                raise ValueError("n_leaves must be a positive power of two")
            depth = n_leaves.bit_length() - 1
        else:
            if leaf_capacity < 1:
                raise ValueError("leaf_capacity must be positive")
            depth = None
        self.points = points
        self.n_points, self.dim = points.shape
        self._leaf_capacity = leaf_capacity
        self.leaf_ids: list[np.ndarray] = []
        self.labels = np.empty(self.n_points, dtype=np.int64)
        self.root = self._build(np.arange(self.n_points, dtype=np.int64), depth)
        self.leaf_lo = np.stack(
            [self.points[ids].min(axis=0) for ids in self.leaf_ids]
        )
        self.leaf_hi = np.stack(
            [self.points[ids].max(axis=0) for ids in self.leaf_ids]
        )

    def _build(self, ids: np.ndarray, depth: int | None) -> _Node:
        pts = self.points[ids]
        lo, hi = pts.min(axis=0), pts.max(axis=0)
        stop = (
            depth == 0
            if depth is not None
            else len(ids) <= self._leaf_capacity
        ) or len(ids) <= 1
        if stop:
            leaf_id = len(self.leaf_ids)
            self.leaf_ids.append(ids)
            self.labels[ids] = leaf_id
            return _Node(lo=lo, hi=hi, is_leaf=True, leaf_id=leaf_id)
        split_dim = int(np.argmax(hi - lo))
        order = np.argsort(pts[:, split_dim], kind="stable")
        half = len(ids) // 2
        child_depth = None if depth is None else depth - 1
        left = self._build(ids[order[:half]], child_depth)
        right = self._build(ids[order[half:]], child_depth)
        return _Node(lo=lo, hi=hi, is_leaf=False, children=[left, right])

    # ------------------------------------------------------------------
    @property
    def num_leaves(self) -> int:
        return len(self.leaf_ids)

    def _containing_leaf(self, node: _Node, p: np.ndarray) -> int | None:
        """DFS for a leaf whose MBR contains ``p`` (MBRs may overlap, so a
        greedy descent can dead-end; full containment search cannot)."""
        if np.any(p < node.lo) or np.any(p > node.hi):
            return None
        if node.is_leaf:
            return node.leaf_id
        for child in node.children:
            found = self._containing_leaf(child, p)
            if found is not None:
                return found
        return None

    def assign(self, points: np.ndarray) -> np.ndarray:
        """Leaf id for arbitrary points.

        Prefers a leaf whose MBR *contains* the point (guaranteeing valid
        distance bounds — every dataset point has one); points outside all
        leaves fall back to least-enlargement descent.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        out = np.empty(len(points), dtype=np.int64)
        for i, p in enumerate(points):
            found = self._containing_leaf(self.root, p)
            if found is not None:
                out[i] = found
                continue
            node = self.root
            while not node.is_leaf:
                best, best_cost = None, None
                for child in node.children:
                    grow = np.maximum(child.lo - p, 0.0) + np.maximum(
                        p - child.hi, 0.0
                    )
                    cost = float(np.sum(grow))
                    if best is None or cost < best_cost:
                        best, best_cost = child, cost
                node = best
            out[i] = node.leaf_id
        return out

    def average_leaf_width(self) -> float:
        """Mean per-dimension MBR width (the ``w_br`` of Appendix B)."""
        return float(np.mean(self.leaf_hi - self.leaf_lo))


class RTreeIndex:
    """Exact kNN over a paged R-tree with optional leaf caching."""

    def __init__(
        self,
        points: np.ndarray,
        leaf_capacity: int | None = None,
        page_size: int = 4096,
        value_bytes: int = 4,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        point_bytes = points.shape[1] * value_bytes
        if leaf_capacity is None:
            leaf_capacity = max(1, page_size // point_bytes)
        self.tree = RTree(points, leaf_capacity=leaf_capacity)
        self.points = self.tree.points
        self._pages_per_leaf = max(1, -(-point_bytes * leaf_capacity // page_size))
        self.total_pages = self.tree.num_leaves * self._pages_per_leaf

    def leaf_contents(self, leaf_id: int) -> tuple[np.ndarray, np.ndarray]:
        ids = self.tree.leaf_ids[leaf_id]
        return ids, self.points[ids]

    def leaf_pages(self, leaf_id: int) -> tuple[int, int]:
        return leaf_id * self._pages_per_leaf, self._pages_per_leaf

    def leaf_stream(self, query: np.ndarray):
        """Best-first traversal by MBR mindist (ascending lower bounds)."""
        query = np.asarray(query, dtype=np.float64)
        counter = 0
        heap: list[tuple[float, int, _Node]] = [(0.0, counter, self.tree.root)]
        while heap:
            bound, _, node = heapq.heappop(heap)
            if node.is_leaf:
                yield bound, node.leaf_id
                continue
            for child in node.children:
                counter += 1
                heapq.heappush(
                    heap, (max(bound, _mindist(query, child.lo, child.hi)), counter, child)
                )

    def search(
        self,
        query: np.ndarray,
        k: int,
        cache: LeafNodeCache | None = None,
        tracker: QueryIOTracker | None = None,
    ) -> TreeSearchResult:
        """Exact kNN with optional leaf-node caching."""
        return cached_leaf_knn(
            query,
            k,
            self.leaf_stream(query),
            self.leaf_contents,
            self.leaf_pages,
            cache=cache,
            tracker=tracker,
        )
