"""Exact kNN index substrate: B+-tree, iDistance, VP-tree, R-tree, VA-file.

All indexes answer exact kNN over the simulated disk, and each can be
accelerated by the paper's caches: ``VAFileIndex`` plugs into the generic
Algorithm-1 pipeline as a candidate generator, while the tree indexes
(``IDistanceIndex``, ``VPTreeIndex``, ``RTreeIndex``) use the leaf-node
cache adaptation of Section 3.6.1 through a shared best-first search.
"""

from repro.index.bptree import BPlusTree
from repro.index.idistance import IDistanceIndex
from repro.index.linear_scan import LinearScanIndex, exact_knn
from repro.index.mtree import MTreeIndex
from repro.index.rtree import RTree, RTreeIndex
from repro.index.treesearch import TreeSearchResult, cached_leaf_knn
from repro.index.vafile import VAFileIndex
from repro.index.vaplus import VAPlusFileIndex
from repro.index.vptree import VPTreeIndex

__all__ = [
    "BPlusTree",
    "IDistanceIndex",
    "LinearScanIndex",
    "MTreeIndex",
    "RTree",
    "RTreeIndex",
    "TreeSearchResult",
    "VAFileIndex",
    "VAPlusFileIndex",
    "VPTreeIndex",
    "cached_leaf_knn",
    "exact_knn",
]
