"""Shared kNN search over paged tree leaves with the leaf-node cache.

Implements the paper's tree-index adaptation (Section 3.6.1): the in-
memory part of the index streams leaves in ascending lower-bound
(``mindist``) order; before a leaf is fetched from disk, the leaf-node
cache is consulted.  A cached leaf yields per-point distance bounds at no
I/O; those bounds tighten the pruning threshold and defer the leaf fetch,
which the multi-step rule later performs only when some of its points can
still qualify.

The procedure is exact: every true kNN member is eventually resolved from
disk (or its whole leaf is), and leaves are skipped only when their
``mindist`` exceeds a valid upper bound on the k-th result distance.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.core.bounds import exact_distances
from repro.core.cache import LeafNodeCache
from repro.storage.iostats import QueryIOTracker


@dataclass(frozen=True)
class TreeQueryStats:
    """Accounting for one tree-index query.

    Attributes:
        leaves_streamed: leaves whose ``mindist`` was examined.
        leaf_fetches: leaves read from disk.
        cached_leaf_hits: leaves answered from the leaf-node cache.
        deferred_fetches: cached leaves that still had to be read later.
        page_reads: disk pages read.
        points_seen: points whose distance (or bound) was computed.
    """

    leaves_streamed: int
    leaf_fetches: int
    cached_leaf_hits: int
    deferred_fetches: int
    page_reads: int
    points_seen: int


@dataclass(frozen=True)
class TreeSearchResult:
    """kNN answer of a tree search: result ids, exact distances, stats."""

    ids: np.ndarray
    distances: np.ndarray
    stats: TreeQueryStats


#: leaf_id -> (point_ids, points); in-memory payload access used after the
#: page charge has been recorded.
LeafContents = Callable[[int], tuple[np.ndarray, np.ndarray]]
#: leaf_id -> (first_page, n_pages) for I/O charging.
LeafPages = Callable[[int], tuple[int, int]]


class _KthEstimate:
    """The k-th smallest per-point upper estimate seen so far.

    One estimate per point id: a point may be seen twice (cached upper
    bound first, exact distance after a deferred leaf fetch), and counting
    it twice would make the k-th estimate invalidly tight and prune true
    results.  A repeated push *tightens* the point's estimate instead
    (exact distance replacing the cached upper bound), so the threshold is
    as sharp as an uncached search after every fetch.
    """

    def __init__(self, k: int) -> None:
        self.k = k
        self._best: dict[int, float] = {}
        self._kth: float = float("inf")
        self._dirty = False

    def push(self, point_id: int, value: float) -> None:
        previous = self._best.get(point_id)
        if previous is not None and previous <= value:
            return
        self._best[point_id] = value
        if previous is None and len(self._best) <= self.k:
            self._dirty = True
        elif value < self._kth or previous is not None:
            self._dirty = True

    def value(self) -> float:
        if self._dirty:
            if len(self._best) < self.k:
                self._kth = float("inf")
            else:
                self._kth = heapq.nsmallest(self.k, self._best.values())[-1]
            self._dirty = False
        return self._kth


def cached_leaf_knn(
    query: np.ndarray,
    k: int,
    leaf_stream: Iterator[tuple[float, int]],
    leaf_contents: LeafContents,
    leaf_pages: LeafPages,
    cache: LeafNodeCache | None = None,
    tracker: QueryIOTracker | None = None,
    id_filter: np.ndarray | None = None,
) -> TreeSearchResult:
    """Exact kNN over a mindist-ordered leaf stream with optional caching.

    Args:
        query: ``(d,)`` query point.
        k: result size.
        leaf_stream: yields ``(mindist, leaf_id)`` with non-decreasing
            ``mindist`` (a valid lower bound on distances inside the leaf).
        leaf_contents: in-memory leaf payload accessor.
        leaf_pages: page extent of a leaf for I/O accounting.
        cache: optional leaf-node cache (approximate or exact entries).
        tracker: per-query I/O tracker.
        id_filter: optional bool array over point ids; ids whose entry is
            False (tombstoned or predicate-rejected) never enter the
            result or the k-th estimate.  The filter applies to cached
            leaves too — a cached leaf may hold deleted points, and the
            cache is consulted before any disk read.
    """
    if k <= 0:
        raise ValueError("k must be positive")
    query = np.asarray(query, dtype=np.float64)
    est = _KthEstimate(k)
    resolved: dict[int, float] = {}
    pending: list[tuple[float, int, int]] = []  # (lb, point_id, leaf_id)
    fetched_leaves: set[int] = set()
    leaves_streamed = 0
    leaf_fetches = 0
    cached_hits = 0
    deferred = 0
    points_seen = 0

    def charge(leaf_id: int) -> None:
        if tracker is None:
            return
        first, count = leaf_pages(leaf_id)
        for page in range(first, first + count):
            tracker.needs_read(page)

    def fetch_leaf(leaf_id: int) -> None:
        nonlocal leaf_fetches, points_seen
        charge(leaf_id)
        leaf_fetches += 1
        fetched_leaves.add(leaf_id)
        ids, pts = leaf_contents(leaf_id)
        if id_filter is not None:
            keep = id_filter[ids]
            ids, pts = ids[keep], pts[keep]
        dists = exact_distances(query, pts)
        points_seen += len(ids)
        for pid, dist in zip(ids.tolist(), dists.tolist()):
            resolved[pid] = dist
            est.push(pid, dist)

    for mindist, leaf_id in leaf_stream:
        leaves_streamed += 1
        if mindist > est.value():
            break
        hit = cache.lookup(query, leaf_id) if cache is not None else None
        if hit is not None:
            cached_hits += 1
            ids, lb, ub = hit
            if id_filter is not None:
                keep = id_filter[ids]
                ids, lb, ub = ids[keep], lb[keep], ub[keep]
            points_seen += len(ids)
            if np.array_equal(lb, ub):
                # Exact cache entry: distances are known outright — the
                # leaf never needs a disk read.
                fetched_leaves.add(leaf_id)
                for pid, dist in zip(ids.tolist(), lb.tolist()):
                    resolved[pid] = dist
                    est.push(pid, dist)
                continue
            for pid, u in zip(ids.tolist(), ub.tolist()):
                est.push(pid, u)
            for pid, bound in zip(ids.tolist(), lb.tolist()):
                pending.append((bound, pid, leaf_id))
        else:
            fetch_leaf(leaf_id)

    # Multi-step resolution of cached leaves: fetch a deferred leaf only
    # while some of its points could still enter the top-k.
    pending.sort()
    for lb, pid, leaf_id in pending:
        if leaf_id in fetched_leaves or pid in resolved:
            continue
        if lb > est.value():
            break  # sorted ascending: everything after is pruned too
        fetch_leaf(leaf_id)
        deferred += 1

    if not resolved:
        empty = np.empty(0)
        stats = TreeQueryStats(
            leaves_streamed,
            leaf_fetches,
            cached_hits,
            deferred,
            tracker.page_reads if tracker else 0,
            points_seen,
        )
        return TreeSearchResult(empty.astype(np.int64), empty, stats)

    ids = np.fromiter(resolved.keys(), dtype=np.int64, count=len(resolved))
    dists = np.fromiter(resolved.values(), dtype=np.float64, count=len(resolved))
    order = np.lexsort((ids, dists))[: min(k, len(ids))]
    stats = TreeQueryStats(
        leaves_streamed=leaves_streamed,
        leaf_fetches=leaf_fetches,
        cached_leaf_hits=cached_hits,
        deferred_fetches=deferred,
        page_reads=tracker.page_reads if tracker else 0,
        points_seen=points_seen,
    )
    return TreeSearchResult(ids[order], dists[order], stats)
