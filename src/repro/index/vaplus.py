"""VA+-file: vector approximation after a KLT rotation (Ferhatosmanoglu
et al., CIKM 2000).

The VA+-file improves the VA-file on non-uniform data in three steps:

1. decorrelate the data with the Karhunen-Loeve transform (PCA rotation);
2. allocate the bit budget *non-uniformly* across the transformed
   dimensions, proportionally to their variance (high-energy dimensions
   get more cells);
3. quantize each dimension with a Lloyd-Max-style scalar quantizer
   (equi-depth cells approximate it here, matching the paper's equi-depth
   framing of approximation files).

The original paper's authors skipped the VA+-file because the KLT "is not
scalable for huge matrices on our datasets" (footnote 10); at this
reproduction's scale the eigendecomposition is cheap, so the substrate is
included for completeness.  Like ``VAFileIndex`` it acts as an exact
candidate generator: phase-1 survivors contain every true kNN member.
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import kth_smallest
from repro.core.builders import build_equidepth
from repro.core.domain import ValueDomain
from repro.storage.iostats import QueryIOTracker


class VAPlusFileIndex:
    """VA+-file candidate generator.

    Args:
        points: ``(n, d)`` dataset (original space).
        total_bits: bit budget per point, distributed across transformed
            dimensions by variance (the classic ``b_j ~ log2 variance``
            water-filling allocation, floored at 0 bits for near-constant
            dimensions).
        page_size: for the on-disk scan variant.
        approximations_on_disk: charge sequential scan pages per query.
    """

    def __init__(
        self,
        points: np.ndarray,
        total_bits: int | None = None,
        page_size: int = 4096,
        approximations_on_disk: bool = False,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self.n_points, self.dim = points.shape
        if total_bits is None:
            total_bits = 6 * self.dim
        if total_bits < self.dim:
            raise ValueError("need at least one bit per dimension on average")
        self.page_size = page_size
        self.approximations_on_disk = approximations_on_disk

        # 1. KLT: rotate onto the data's principal axes.
        self.mean = points.mean(axis=0)
        centered = points - self.mean
        cov = centered.T @ centered / max(self.n_points - 1, 1)
        eigvals, eigvecs = np.linalg.eigh(cov)
        order = np.argsort(eigvals)[::-1]
        self.basis = eigvecs[:, order]  # columns = principal directions
        self.variances = np.maximum(eigvals[order], 0.0)
        transformed = centered @ self.basis

        # 2. Variance-proportional bit allocation (greedy water-filling).
        self.bits = self._allocate_bits(self.variances, total_bits)

        # 3. Per-dimension equi-depth quantizers in the rotated space.
        self._histograms = []
        for j in range(self.dim):
            domain = ValueDomain.from_column(transformed[:, j])
            cells = max(1, 2 ** int(self.bits[j]))
            self._histograms.append(build_equidepth(domain, cells))
        self.codes = np.empty((self.n_points, self.dim), dtype=np.int64)
        max_cells = max(h.num_buckets for h in self._histograms)
        self._lowers = np.zeros((self.dim, max_cells))
        self._uppers = np.zeros((self.dim, max_cells))
        for j, hist in enumerate(self._histograms):
            self.codes[:, j] = hist.lookup(transformed[:, j])
            b = hist.num_buckets
            self._lowers[j, :b] = hist.lowers
            self._uppers[j, :b] = hist.uppers
            if b < max_cells:
                self._lowers[j, b:] = hist.lowers[-1]
                self._uppers[j, b:] = hist.uppers[-1]
        self.approximation_bytes = int(np.sum(self.bits)) * self.n_points // 8

    @staticmethod
    def _allocate_bits(variances: np.ndarray, total_bits: int) -> np.ndarray:
        """Greedy allocation: each extra bit goes to the dimension whose
        current quantization error (variance / 4**bits) is largest."""
        d = len(variances)
        bits = np.zeros(d, dtype=np.int64)
        errors = variances.astype(np.float64).copy()
        for _ in range(total_bits):
            j = int(np.argmax(errors))
            bits[j] += 1
            errors[j] /= 4.0  # one more bit quarters the squared error
        return bits

    @property
    def scan_pages(self) -> int:
        return max(1, -(-self.approximation_bytes // self.page_size))

    def transform(self, points: np.ndarray) -> np.ndarray:
        """Map original-space points into the KLT basis."""
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        return (points - self.mean) @ self.basis

    def bounds(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Phase-1 bounds in the rotated space (rotation preserves L2)."""
        tq = self.transform(query)[0]
        lo, hi = self._lowers, self._uppers
        q = tq[:, None]
        below = np.maximum(lo - q, 0.0)
        above = np.maximum(q - hi, 0.0)
        lb2 = (below + above) ** 2
        far = np.maximum(np.abs(q - lo), np.abs(q - hi))
        ub2 = far**2
        dims = np.arange(self.dim)[None, :]
        lb = np.sqrt(np.sum(lb2[dims, self.codes], axis=1))
        ub = np.sqrt(np.sum(ub2[dims, self.codes], axis=1))
        return lb, ub

    def candidates(
        self,
        query: np.ndarray,
        k: int,
        tracker: QueryIOTracker | None = None,
        live: np.ndarray | None = None,
    ) -> np.ndarray:
        """Phase-1 survivors in ascending lower-bound order.

        ``live`` restricts both the filter bound and the survivors to
        eligible rows (see :meth:`VAFileIndex.candidates`); its bitmap
        may extend past ``n_points`` when appended rows live in an
        overlay rather than this index.
        """
        if k <= 0:
            raise ValueError("k must be positive")
        if self.approximations_on_disk and tracker is not None:
            for page in range(self.scan_pages):
                tracker.needs_read(page)
        lb, ub = self.bounds(query)
        if live is not None:
            alive = np.flatnonzero(
                np.asarray(live, dtype=bool)[: self.n_points]
            )
            if len(alive) == 0:
                return np.empty(0, dtype=np.int64)
            delta = kth_smallest(ub[alive], min(k, len(alive)))
            survivors = alive[lb[alive] <= delta]
        else:
            delta = kth_smallest(ub, min(k, self.n_points))
            survivors = np.flatnonzero(lb <= delta)
        order = np.argsort(lb[survivors], kind="stable")
        return survivors[order].astype(np.int64)
