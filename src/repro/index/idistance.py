"""iDistance: B+-tree kNN index over distance keys (Jagadish et al. 2005).

Points are partitioned around k-means reference points; each point gets
the one-dimensional key ``cluster_id * C + dist(p, center)`` and the keys
are indexed by a B+-tree.  Leaf nodes (disk pages of points, grouped by
key order and never crossing cluster boundaries) form the on-disk dataset;
the B+-tree and cluster metadata stay in memory (the paper stores the
index ``I`` in memory, Section 3.6.1).

The triangle inequality gives each leaf a distance lower bound
``max(0, d(q, center) - r_max, r_min - d(q, center))``, which drives the
shared mindist-ordered search of ``repro.index.treesearch``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.cache import LeafNodeCache
from repro.data.clustering import kmeans
from repro.index.bptree import BPlusTree
from repro.index.treesearch import TreeSearchResult, cached_leaf_knn
from repro.storage.iostats import QueryIOTracker


@dataclass(frozen=True)
class _Leaf:
    leaf_id: int
    cluster: int
    r_min: float
    r_max: float
    point_ids: np.ndarray
    first_page: int
    n_pages: int


class IDistanceIndex:
    """iDistance with paged leaves and optional leaf-node caching.

    Args:
        points: ``(n, d)`` dataset.
        n_refs: number of reference points (k-means centers).
        page_size: disk page size for leaf layout.
        value_bytes: stored size of one coordinate.
        seed: RNG seed for k-means.
        btree_order: order of the key B+-tree.
    """

    def __init__(
        self,
        points: np.ndarray,
        n_refs: int = 16,
        page_size: int = 4096,
        value_bytes: int = 4,
        seed: int = 0,
        btree_order: int = 32,
    ) -> None:
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        self.points = points
        self.n_points, self.dim = points.shape
        self.page_size = page_size
        self.value_bytes = value_bytes
        self.btree_order = btree_order
        centers, labels = kmeans(points, n_refs, seed=seed)
        self.centers = centers
        self._labels = np.asarray(labels, dtype=np.int64)
        self._build_layout()

    @classmethod
    def from_state(
        cls,
        points: np.ndarray,
        centers: np.ndarray,
        labels: np.ndarray,
        page_size: int = 4096,
        value_bytes: int = 4,
        btree_order: int = 32,
    ) -> "IDistanceIndex":
        """Rebuild from a persisted clustering, skipping k-means.

        Radii, stride, leaf layout and the B+-tree are deterministic
        functions of ``(points, centers, labels)``, so only the cluster
        assignment needs persisting — the rest is recomputed bit-identically
        in milliseconds.
        """
        index = cls.__new__(cls)
        index.points = np.asarray(points, dtype=np.float64)
        index.n_points, index.dim = index.points.shape
        index.page_size = page_size
        index.value_bytes = value_bytes
        index.btree_order = btree_order
        index.centers = np.asarray(centers, dtype=np.float64)
        index._labels = np.asarray(labels, dtype=np.int64)
        index._build_layout()
        return index

    def _build_layout(self) -> None:
        """Derive radii, stride, leaf layout and the key B+-tree."""
        labels = self._labels
        radii = np.linalg.norm(self.points - self.centers[labels], axis=1)
        # The key-space stride C must exceed any within-cluster radius.
        self.stride = float(radii.max()) * 2.0 + 1.0
        point_bytes = self.dim * self.value_bytes
        per_leaf = max(1, self.page_size // point_bytes)
        pages_per_leaf = max(1, -(-point_bytes * per_leaf // self.page_size))
        order = np.lexsort((radii, labels))
        self.leaves: list[_Leaf] = []
        next_page = 0
        i = 0
        while i < self.n_points:
            cluster = int(labels[order[i]])
            j = i
            while (
                j < self.n_points
                and j - i < per_leaf
                and int(labels[order[j]]) == cluster
            ):
                j += 1
            ids = order[i:j]
            self.leaves.append(
                _Leaf(
                    leaf_id=len(self.leaves),
                    cluster=cluster,
                    r_min=float(radii[ids].min()),
                    r_max=float(radii[ids].max()),
                    point_ids=ids.astype(np.int64),
                    first_page=next_page,
                    n_pages=pages_per_leaf,
                )
            )
            next_page += pages_per_leaf
            i = j
        self.total_pages = next_page
        self.btree = BPlusTree.bulk_load(
            [
                (leaf.cluster * self.stride + leaf.r_min, leaf.leaf_id)
                for leaf in self.leaves
            ],
            order=self.btree_order,
        )

    # ------------------------------------------------------------------
    def insert_many(self, points: np.ndarray) -> None:
        """Append rows under the preserved clustering and re-derive layout.

        The k-means centers are trained geometry and stay fixed; new
        points are labeled by their nearest center and the (deterministic)
        leaf layout + B+-tree are rebuilt — exactly what
        :meth:`from_state` would produce over the extended dataset, so an
        incremental index matches a geometry-preserving rebuild.  Leaf
        ids are renumbered by the relayout: any leaf-node cache keyed on
        them must be cleared by the caller.
        """
        points = np.atleast_2d(np.asarray(points, dtype=np.float64))
        if len(points) == 0:
            return
        dists = np.linalg.norm(
            points[:, None, :] - self.centers[None, :, :], axis=2
        )
        labels = np.argmin(dists, axis=1).astype(np.int64)
        self.points = np.vstack([self.points, points])
        self._labels = np.concatenate([self._labels, labels])
        self.n_points = len(self.points)
        self._build_layout()

    def key_of(self, point: np.ndarray, cluster: int | None = None) -> float:
        """The iDistance key of a point (nearest cluster when unspecified)."""
        point = np.asarray(point, dtype=np.float64)
        dists = np.linalg.norm(self.centers - point, axis=1)
        if cluster is None:
            cluster = int(np.argmin(dists))
        return cluster * self.stride + float(dists[cluster])

    def leaf_contents(self, leaf_id: int) -> tuple[np.ndarray, np.ndarray]:
        leaf = self.leaves[leaf_id]
        return leaf.point_ids, self.points[leaf.point_ids]

    def leaf_pages(self, leaf_id: int) -> tuple[int, int]:
        leaf = self.leaves[leaf_id]
        return leaf.first_page, leaf.n_pages

    def leaves_in_key_range(self, lo: float, hi: float) -> list[int]:
        """Leaf ids whose key interval intersects ``[lo, hi]`` (B+-tree scan).

        A leaf starting before ``lo`` may still intersect, so the scan
        backs up by one leaf per cluster segment.
        """
        hits = [leaf_id for _, leaf_id in self.btree.range_search(lo, hi)]
        # Include the leaf whose start key is the last one <= lo.
        best = None
        for key, leaf_id in self.btree.items():
            if key > lo:
                break
            best = leaf_id
        if best is not None:
            leaf = self.leaves[best]
            if leaf.cluster * self.stride + leaf.r_max >= lo and best not in hits:
                hits.insert(0, best)
        return hits

    def leaf_stream(self, query: np.ndarray):
        """Leaves in ascending mindist order (triangle-inequality bound)."""
        query = np.asarray(query, dtype=np.float64)
        dq = np.linalg.norm(self.centers - query, axis=1)
        bounds = np.empty(len(self.leaves), dtype=np.float64)
        for idx, leaf in enumerate(self.leaves):
            d = dq[leaf.cluster]
            bounds[idx] = max(0.0, d - leaf.r_max, leaf.r_min - d)
        for idx in np.argsort(bounds, kind="stable"):
            yield float(bounds[idx]), int(idx)

    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        cache: LeafNodeCache | None = None,
        tracker: QueryIOTracker | None = None,
    ) -> TreeSearchResult:
        """Exact kNN with optional leaf-node caching (Section 3.6.1)."""
        return cached_leaf_knn(
            query,
            k,
            self.leaf_stream(query),
            self.leaf_contents,
            self.leaf_pages,
            cache=cache,
            tracker=tracker,
        )

    def leaf_access_frequencies(
        self, workload_queries: np.ndarray, k: int
    ) -> dict[int, int]:
        """Leaf fetch counts under the workload (drives HFF leaf caching)."""
        freqs: dict[int, int] = {}
        for query in np.atleast_2d(np.asarray(workload_queries, dtype=np.float64)):
            tracker = QueryIOTracker()
            probe = _FrequencyProbe(self, query, k)
            probe.run(tracker)
            for leaf_id in probe.fetched:
                freqs[leaf_id] = freqs.get(leaf_id, 0) + 1
        return freqs


class _FrequencyProbe:
    """Runs an uncached search and records which leaves were fetched."""

    def __init__(self, index: IDistanceIndex, query: np.ndarray, k: int) -> None:
        self.index = index
        self.query = query
        self.k = k
        self.fetched: list[int] = []

    def run(self, tracker: QueryIOTracker) -> None:
        def contents(leaf_id: int):
            self.fetched.append(leaf_id)
            return self.index.leaf_contents(leaf_id)

        cached_leaf_knn(
            self.query,
            self.k,
            self.index.leaf_stream(self.query),
            contents,
            self.index.leaf_pages,
            cache=None,
            tracker=tracker,
        )
