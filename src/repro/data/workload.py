"""Query logs with Zipf popularity (the paper's Figure 2 power law).

The caching techniques of the paper exploit temporal locality in the query
log: a small fraction of queries accounts for most submissions (Flickr view
counts, SOGOU search log).  We model a log as draws with replacement from a
pool of distinct queries under a Zipf(s) popularity distribution, then split
it into the workload ``WL`` (used to build caches and histograms) and the
test set ``Qtest`` (used to measure performance), exactly as the paper
splits its logs (Section 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class QueryLog:
    """A popularity-skewed query log split into workload and test halves.

    Attributes:
        pool: ``(m, d)`` distinct query points.
        workload_idx: indices into ``pool`` for the workload ``WL`` (with
            repetitions — popular queries appear many times).
        test_idx: indices into ``pool`` for ``Qtest``.
    """

    pool: np.ndarray
    workload_idx: np.ndarray
    test_idx: np.ndarray

    def __post_init__(self) -> None:
        pool = np.asarray(self.pool, dtype=np.float64)
        if pool.ndim != 2 or len(pool) == 0:
            raise ValueError("pool must be a non-empty (m, d) array")
        for name in ("workload_idx", "test_idx"):
            idx = np.asarray(getattr(self, name), dtype=np.int64)
            if idx.size and (idx.min() < 0 or idx.max() >= len(pool)):
                raise ValueError(f"{name} out of range")
            object.__setattr__(self, name, idx)
        object.__setattr__(self, "pool", pool)

    @property
    def workload(self) -> np.ndarray:
        """The ``WL`` query points, with repetitions, shape ``(|WL|, d)``."""
        return self.pool[self.workload_idx]

    @property
    def test(self) -> np.ndarray:
        """The ``Qtest`` query points, shape ``(|Qtest|, d)``."""
        return self.pool[self.test_idx]

    def popularity(self) -> np.ndarray:
        """Submissions per distinct query over the whole log, descending.

        This is the series behind the paper's Figure 2 (views per photo).
        """
        counts = np.bincount(
            np.concatenate([self.workload_idx, self.test_idx]),
            minlength=len(self.pool),
        )
        return np.sort(counts)[::-1]


def _zipf_probabilities(m: int, s: float) -> np.ndarray:
    ranks = np.arange(1, m + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def generate_query_log(
    points: np.ndarray,
    pool_size: int = 500,
    workload_size: int = 2000,
    test_size: int = 50,
    zipf_s: float = 1.1,
    jitter: float = 0.0,
    seed: int = 0,
) -> QueryLog:
    """Build a query log whose queries lie near the data distribution.

    Distinct queries are sampled from the dataset itself (the paper
    generates query logs "by picking random points from P"), optionally
    perturbed by Gaussian ``jitter`` (relative to the data's coordinate
    spread).  Popularities follow Zipf(``zipf_s``); the whole log of
    ``workload_size + test_size`` submissions is drawn i.i.d. from that
    popularity and split chronologically.

    Args:
        points: ``(n, d)`` dataset the queries should resemble.
        pool_size: number of distinct queries.
        workload_size: submissions kept as the workload ``WL``.
        test_size: submissions kept as ``Qtest`` (paper fixes 50).
        zipf_s: skew; larger = stronger temporal locality.  ``s = 0`` makes
            a uniform (locality-free) log.
        jitter: std of added Gaussian noise, relative to coordinate std.
        seed: RNG seed.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if pool_size <= 0 or workload_size < 0 or test_size <= 0:
        raise ValueError("pool_size and test_size must be positive")
    if zipf_s < 0:
        raise ValueError("zipf_s must be non-negative")
    rng = np.random.default_rng(seed)
    pick = rng.choice(len(points), size=min(pool_size, len(points)), replace=False)
    pool = points[pick].copy()
    if jitter > 0:
        scale = jitter * float(points.std() or 1.0)
        pool = pool + rng.normal(scale=scale, size=pool.shape)
    probs = _zipf_probabilities(len(pool), zipf_s)
    # Shuffle which pool member gets which popularity rank.
    rank_of = rng.permutation(len(pool))
    probs = probs[rank_of]
    total = workload_size + test_size
    draws = rng.choice(len(pool), size=total, p=probs)
    return QueryLog(
        pool=pool,
        workload_idx=draws[:workload_size],
        test_idx=draws[workload_size:],
    )
