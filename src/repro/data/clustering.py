"""Minimal k-means used by iDistance reference points and file clustering."""

from __future__ import annotations

import numpy as np


def _kmeans_pp_init(
    points: np.ndarray, n_clusters: int, rng: np.random.Generator
) -> np.ndarray:
    """k-means++ seeding: spread initial centers by squared-distance weight."""
    n = len(points)
    centers = np.empty((n_clusters, points.shape[1]), dtype=np.float64)
    first = int(rng.integers(n))
    centers[0] = points[first]
    closest_sq = np.sum((points - centers[0]) ** 2, axis=1)
    for i in range(1, n_clusters):
        total = closest_sq.sum()
        if total <= 0:
            # All remaining points coincide with chosen centers.
            centers[i:] = points[rng.integers(n, size=n_clusters - i)]
            break
        probs = closest_sq / total
        pick = int(rng.choice(n, p=probs))
        centers[i] = points[pick]
        closest_sq = np.minimum(
            closest_sq, np.sum((points - centers[i]) ** 2, axis=1)
        )
    return centers


def kmeans(
    points: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    max_iter: int = 25,
) -> tuple[np.ndarray, np.ndarray]:
    """Lloyd's algorithm with k-means++ initialization.

    Args:
        points: ``(n, d)`` data.
        n_clusters: number of centers; clipped to ``n``.
        seed: RNG seed for deterministic results.
        max_iter: Lloyd iteration cap.

    Returns:
        ``(centers, labels)`` with ``centers`` of shape ``(n_clusters, d)``
        and ``labels`` of shape ``(n,)`` assigning each point to its nearest
        center.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or len(points) == 0:
        raise ValueError("points must be a non-empty (n, d) array")
    if n_clusters <= 0:
        raise ValueError("n_clusters must be positive")
    n_clusters = min(n_clusters, len(points))
    rng = np.random.default_rng(seed)
    centers = _kmeans_pp_init(points, n_clusters, rng)
    labels = np.zeros(len(points), dtype=np.int64)
    for _ in range(max_iter):
        # Squared distances to every center, (n, k).
        d2 = (
            np.sum(points**2, axis=1)[:, None]
            - 2.0 * points @ centers.T
            + np.sum(centers**2, axis=1)[None, :]
        )
        new_labels = np.argmin(d2, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for c in range(n_clusters):
            members = points[labels == c]
            if len(members):
                centers[c] = members.mean(axis=0)
            else:
                # Re-seed an empty cluster at the point farthest from its center.
                worst = int(np.argmax(np.min(d2, axis=1)))
                centers[c] = points[worst]
    return centers, labels


def assign_labels(points: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """Nearest-center labels for ``points`` given fixed ``centers``."""
    points = np.asarray(points, dtype=np.float64)
    centers = np.asarray(centers, dtype=np.float64)
    d2 = (
        np.sum(points**2, axis=1)[:, None]
        - 2.0 * points @ centers.T
        + np.sum(centers**2, axis=1)[None, :]
    )
    return np.argmin(d2, axis=1)
