"""Synthetic datasets and query workloads standing in for the paper's data.

The paper evaluates on NUS-WIDE, IMGNET and SOGOU image-feature datasets
(with a real query log for SOGOU).  Those corpora are not redistributable;
this package generates clustered feature data and Zipf-popularity query
logs with the same structural properties (see DESIGN.md, Section 2).
"""

from repro.data.clustering import kmeans
from repro.data.datasets import Dataset, load_dataset
from repro.data.synthetic import clustered_dataset
from repro.data.workload import QueryLog, generate_query_log

__all__ = [
    "Dataset",
    "QueryLog",
    "clustered_dataset",
    "generate_query_log",
    "kmeans",
    "load_dataset",
]
