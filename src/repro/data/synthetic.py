"""Clustered synthetic feature datasets standing in for the paper's corpora.

The paper's datasets are image feature vectors (150-d color histograms for
NUS-WIDE/IMGNET, 960-d GIST for SOGOU).  Such features are heavily
clustered (images of similar content collide) with skewed per-coordinate
marginals.  We reproduce those structural properties with a Gaussian
mixture whose cluster spreads vary and whose values are squashed onto a
bounded integer grid — the properties the algorithms actually consume
(see DESIGN.md Section 2).
"""

from __future__ import annotations

import numpy as np

from repro.core.domain import discretize


def clustered_dataset(
    n_points: int,
    dim: int,
    n_clusters: int = 12,
    value_bits: int = 12,
    cluster_std_range: tuple[float, float] = (0.02, 0.10),
    skew: float = 2.0,
    seed: int = 0,
) -> np.ndarray:
    """Generate ``(n_points, dim)`` grid-valued clustered feature vectors.

    Args:
        n_points: dataset cardinality.
        dim: dimensionality (150 and 960 mirror the paper's datasets).
        n_clusters: number of Gaussian mixture components.
        value_bits: coordinates are snapped to ``2**value_bits`` grid levels.
        cluster_std_range: per-cluster standard deviation range, relative to
            the unit cube before discretization.
        skew: >1 pushes cluster centers toward the low end of the domain,
            mimicking the skewed marginals of real color/GIST features.
        seed: RNG seed.

    Returns:
        float64 array of integer-valued coordinates in ``[0, 2**value_bits)``.
    """
    if n_points <= 0 or dim <= 0:
        raise ValueError("n_points and dim must be positive")
    if n_clusters <= 0:
        raise ValueError("n_clusters must be positive")
    rng = np.random.default_rng(seed)
    # Cluster sizes: Dirichlet weights so components differ in popularity.
    weights = rng.dirichlet(np.full(n_clusters, 1.5))
    sizes = rng.multinomial(n_points, weights)
    centers = rng.uniform(size=(n_clusters, dim)) ** skew
    stds = rng.uniform(*cluster_std_range, size=n_clusters)
    blocks = []
    for c in range(n_clusters):
        if sizes[c] == 0:
            continue
        block = centers[c] + rng.normal(scale=stds[c], size=(sizes[c], dim))
        blocks.append(block)
    raw = np.concatenate(blocks, axis=0)
    # Shuffle so the raw file ordering carries no cluster information.
    rng.shuffle(raw)
    raw = np.clip(raw, 0.0, 1.0)
    return discretize(raw, value_bits)


def uniform_dataset(
    n_points: int, dim: int, value_bits: int = 12, seed: int = 0
) -> np.ndarray:
    """Uniform grid-valued data — the adversarial case for caching."""
    rng = np.random.default_rng(seed)
    raw = rng.uniform(size=(n_points, dim))
    return discretize(raw, value_bits)
