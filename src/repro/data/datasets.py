"""Named dataset registry mirroring the paper's experimental corpora.

The registry exposes simulated stand-ins for the paper's three datasets
(Table 2) plus a ``tiny`` config used throughout the test suite:

====================  =====  =========  ==========================
name                  d      n (sim)    paper original
====================  =====  =========  ==========================
tiny                  16     2,000      (testing only)
nus-wide-sim          150    30,000     NUS-WIDE, 267,415 pts
imgnet-sim            150    80,000     IMGNET, 2,213,937 pts
sogou-sim             960    20,000     SOGOU, 8,304,965 pts
====================  =====  =========  ==========================

Cardinalities are laptop-scale; pass ``scale`` to ``load_dataset`` to grow
or shrink them proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.domain import ValueDomain, discretize
from repro.data.synthetic import clustered_dataset
from repro.data.workload import QueryLog, generate_query_log


@dataclass(frozen=True)
class Dataset:
    """A point set plus its query log and value-domain metadata.

    Attributes:
        name: registry name or user-given label.
        points: ``(n, d)`` float64 array of grid-valued coordinates.
        value_bits: ``Lvalue`` — bits of the discretized value domain.
        query_log: workload/test query split (None until attached).
    """

    name: str
    points: np.ndarray
    value_bits: int = 12
    query_log: QueryLog | None = None
    value_bytes: int = 4
    _domain_cache: dict = field(default_factory=dict, repr=False, compare=False)

    def __post_init__(self) -> None:
        points = np.asarray(self.points, dtype=np.float64)
        if points.ndim != 2 or len(points) == 0:
            raise ValueError("points must be a non-empty (n, d) array")
        object.__setattr__(self, "points", points)

    @classmethod
    def from_points(
        cls,
        name: str,
        points: np.ndarray,
        value_bits: int = 12,
        query_log: QueryLog | None = None,
        already_discrete: bool = False,
        **log_kwargs,
    ) -> "Dataset":
        """Wrap arbitrary float points, discretizing onto the value grid.

        A default Zipf query log is generated when none is supplied;
        ``log_kwargs`` are forwarded to ``generate_query_log``.
        """
        pts = np.asarray(points, dtype=np.float64)
        if not already_discrete:
            pts = discretize(pts, value_bits)
        if query_log is None:
            query_log = generate_query_log(pts, **log_kwargs)
        return cls(name=name, points=pts, value_bits=value_bits, query_log=query_log)

    @property
    def num_points(self) -> int:
        return len(self.points)

    @property
    def dim(self) -> int:
        return self.points.shape[1]

    @property
    def point_bytes(self) -> int:
        """Stored record size (paper Table 2: 600 B at d=150, 3840 B at 960)."""
        return self.dim * self.value_bytes

    @property
    def file_bytes(self) -> int:
        return self.num_points * self.point_bytes

    @property
    def domain(self) -> ValueDomain:
        """Global value domain ``V`` over all coordinates (cached)."""
        if "global" not in self._domain_cache:
            self._domain_cache["global"] = ValueDomain.from_points(self.points)
        return self._domain_cache["global"]

    def dimension_domain(self, j: int) -> ValueDomain:
        """Value domain of dimension ``j`` (for individual histograms)."""
        key = ("dim", j)
        if key not in self._domain_cache:
            self._domain_cache[key] = ValueDomain.from_column(self.points[:, j])
        return self._domain_cache[key]

    def with_query_log(self, query_log: QueryLog) -> "Dataset":
        """Copy of this dataset with a different query log attached."""
        return Dataset(
            name=self.name,
            points=self.points,
            value_bits=self.value_bits,
            query_log=query_log,
            value_bytes=self.value_bytes,
        )


@dataclass(frozen=True)
class _Config:
    n_points: int
    dim: int
    n_clusters: int
    value_bits: int
    pool_size: int
    workload_size: int
    test_size: int
    zipf_s: float


REGISTRY: dict[str, _Config] = {
    "tiny": _Config(2_000, 16, 4, 8, 60, 400, 20, 1.1),
    "nus-wide-sim": _Config(30_000, 150, 12, 12, 400, 2_000, 50, 1.1),
    "imgnet-sim": _Config(80_000, 150, 16, 12, 400, 2_000, 50, 1.1),
    "sogou-sim": _Config(20_000, 960, 10, 12, 400, 2_000, 50, 1.1),
}


def load_dataset(name: str, seed: int = 0, scale: float = 1.0) -> Dataset:
    """Materialize a registry dataset deterministically.

    Args:
        name: one of ``REGISTRY``.
        seed: RNG seed for both data and query log.
        scale: multiplies the cardinality and workload size (e.g. 0.1 for a
            fast smoke run); dimensionality is never scaled.
    """
    if name not in REGISTRY:
        raise KeyError(f"unknown dataset {name!r}; choices: {sorted(REGISTRY)}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    cfg = REGISTRY[name]
    n = max(200, int(cfg.n_points * scale))
    points = clustered_dataset(
        n_points=n,
        dim=cfg.dim,
        n_clusters=cfg.n_clusters,
        value_bits=cfg.value_bits,
        seed=seed,
    )
    log = generate_query_log(
        points,
        pool_size=min(cfg.pool_size, max(20, n // 5)),
        workload_size=max(50, int(cfg.workload_size * scale)),
        test_size=cfg.test_size,
        zipf_s=cfg.zipf_s,
        seed=seed + 1,
    )
    return Dataset(
        name=name, points=points, value_bits=cfg.value_bits, query_log=log
    )
