"""Quickstart: accelerate kNN candidate refinement with a histogram cache.

Builds a small simulated image-feature dataset, a C2LSH index over it,
and an HC-O (optimal kNN histogram) cache, then answers queries and shows
the I/O saved against the uncached and exact-cache baselines.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import build_caching_pipeline, load_dataset
from repro.eval.methods import WorkloadContext

SEED = 7
K = 10
TAU = 8  # code length: each coordinate stored in 8 bits


def main() -> None:
    # 1. A dataset with a Zipf-skewed query log (stand-in for NUS-WIDE).
    dataset = load_dataset("nus-wide-sim", seed=SEED, scale=0.1)
    print(
        f"dataset: {dataset.num_points} points, d={dataset.dim}, "
        f"file {dataset.file_bytes >> 10} KB, "
        f"workload {len(dataset.query_log.workload)} queries"
    )

    # 2. Prepare the shared context once: builds the C2LSH index, runs the
    #    workload, and collects candidate frequencies + the F' array.
    context = WorkloadContext.prepare(dataset, index_name="c2lsh", k=K, seed=SEED)
    cache_bytes = dataset.file_bytes // 3  # the paper's ~30% budget

    # 3. Assemble pipelines: no cache, exact cache, HC-O histogram cache.
    pipelines = {
        name: build_caching_pipeline(
            dataset, method=name, tau=TAU, cache_bytes=cache_bytes,
            k=K, context=context,
        )
        for name in ("NO-CACHE", "EXACT", "HC-O")
    }

    # 4. Answer the test queries and compare I/O.
    print(f"\n{'method':9s} {'hit':>5s} {'prune':>6s} {'Crefine':>8s} {'pages':>6s}")
    reference = None
    for name, pipeline in pipelines.items():
        reads, crefine, hits, prunes = [], [], [], []
        for query in dataset.query_log.test:
            result = pipeline.search(query, K)
            reads.append(result.stats.refine_page_reads)
            crefine.append(result.stats.c_refine)
            hits.append(result.stats.hit_ratio)
            prunes.append(result.stats.prune_ratio)
            if name == "NO-CACHE":
                pass
        print(
            f"{name:9s} {np.mean(hits):5.2f} {np.mean(prunes):6.2f} "
            f"{np.mean(crefine):8.1f} {np.mean(reads):6.1f}"
        )

    # 5. Results are identical with and without the cache.
    q = dataset.query_log.test[0]
    ids_cached = set(pipelines["HC-O"].search(q, K).ids.tolist())
    ids_plain = set(pipelines["NO-CACHE"].search(q, K).ids.tolist())
    assert ids_cached == ids_plain
    print("\ncached result ids match the uncached search:", sorted(ids_cached))


if __name__ == "__main__":
    main()
