"""Scenario: an online kNN service with layered caches and nightly rebuilds.

Composes three mechanisms this package provides:

1. a **result cache** for exact repeated queries (free hits),
2. the paper's **HC-O point cache** for everything else,
3. the Section-3.5 **maintenance loop**: a sliding window of served
   queries feeds a periodic rebuild, so the cache tracks the workload as
   its popularity distribution drifts.

Run:  python examples/online_service.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.core.maintenance import CacheMaintainer, SlidingWindowWorkload
from repro.core.resultcache import ResultCache, ResultCachedSearch
from repro.core.search import CachedKNNSearch
from repro.data.workload import generate_query_log
from repro.lsh.c2lsh import C2LSHIndex
from repro.storage.pointfile import PointFile

SEED = 21
K = 10
TAU = 8


def serve_phase(label, queries, maintainer, index, point_file, result_cache):
    """Serve a batch of queries through result cache -> point cache."""
    searcher = CachedKNNSearch(index, point_file, maintainer.cache)
    wrapped = ResultCachedSearch(searcher, result_cache)
    reads = []
    for query in queries:
        result = wrapped.search(query, K)
        reads.append(result.stats.refine_page_reads)
        maintainer.observe(query)
    print(
        f"  {label:18s} avg refine pages/query = {np.mean(reads):6.1f}  "
        f"(result-cache hits so far: {result_cache.stats().hits})"
    )
    return float(np.mean(reads))


def main() -> None:
    dataset = load_dataset("nus-wide-sim", seed=SEED, scale=0.15)
    index = C2LSHIndex(dataset.points, seed=SEED)
    point_file = PointFile(dataset.points, value_bytes=dataset.value_bytes)
    cache_bytes = dataset.file_bytes // 10
    print(f"corpus {dataset.num_points} x {dataset.dim}; "
          f"cache budget {cache_bytes >> 10} KB\n")

    maintainer = CacheMaintainer(
        index, dataset.points, k=K, tau=TAU, cache_bytes=cache_bytes,
        window=SlidingWindowWorkload(capacity=400),
    )
    result_cache = ResultCache(cache_bytes // 8, dataset.dim)

    # Day 1: warm up on the historical log, build the first cache.
    for query in dataset.query_log.workload[:400]:
        maintainer.observe(query)
    report = maintainer.rebuild()
    print(f"initial rebuild: {report.cache_items} cached points, "
          f"{report.histogram_buckets} histogram buckets")
    day1 = serve_phase("day 1 traffic", dataset.query_log.test,
                       maintainer, index, point_file, result_cache)

    # Day 2: the popular queries drift to a new pool.
    drifted = generate_query_log(
        dataset.points, pool_size=60, workload_size=400, test_size=40,
        zipf_s=1.2, seed=SEED + 100,
    )
    stale = serve_phase("day 2 (stale cache)", drifted.test,
                        maintainer, index, point_file,
                        ResultCache(cache_bytes // 8, dataset.dim))
    for query in drifted.workload:
        maintainer.observe(query)
    maintainer.rebuild()
    fresh = serve_phase("day 2 (rebuilt)", drifted.test,
                        maintainer, index, point_file,
                        ResultCache(cache_bytes // 8, dataset.dim))

    print(f"\nrebuild recovered "
          f"{(stale - fresh) / max(stale, 1e-9):.0%} of the drift-induced I/O"
          f" (day-1 baseline {day1:.1f} pages/query)")


if __name__ == "__main__":
    main()
