"""Scenario: speeding up *exact* kNN indexes with the leaf-node cache.

Section 3.6.1 of the paper: the caching idea is not LSH-specific.  For
tree indexes (iDistance, VP-tree) the cache item becomes a leaf node
holding approximate representations of all its points; the tree search
consults the cache before fetching a leaf and defers fetches that the
bounds prove unnecessary.  Results stay exact.

Run:  python examples/exact_index_caching.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.eval.methods import build_tree_pipeline
from repro.index.linear_scan import exact_knn

SEED = 5
K = 10
TAU = 6


def main() -> None:
    dataset = load_dataset("nus-wide-sim", seed=SEED, scale=0.15)
    cache_bytes = dataset.file_bytes // 3
    print(
        f"dataset: {dataset.num_points} points, d={dataset.dim}; "
        f"leaf cache budget {cache_bytes >> 10} KB"
    )

    for index_name in ("idistance", "vptree"):
        print(f"\n=== {index_name} ===")
        pipelines = {
            method: build_tree_pipeline(
                dataset, index_name, method, tau=TAU,
                cache_bytes=cache_bytes, k=K, seed=SEED,
            )
            for method in ("NO-CACHE", "EXACT", "HC-O")
        }
        for method, pipeline in pipelines.items():
            pages, leaf_fetches, deferred = [], [], []
            for query in dataset.query_log.test:
                result = pipeline.search(query, K)
                pages.append(result.stats.page_reads)
                leaf_fetches.append(result.stats.leaf_fetches)
                deferred.append(result.stats.deferred_fetches)
                # Exactness: identical to brute force (ties tolerated).
                truth, dists = exact_knn(dataset.points, query, K)
                kth = dists[-1]
                d = np.linalg.norm(dataset.points[result.ids] - query, axis=1)
                assert np.all(d <= kth + 1e-9)
            print(
                f"  {method:9s} pages/query={np.mean(pages):7.1f}  "
                f"leaf fetches={np.mean(leaf_fetches):7.1f}  "
                f"deferred={np.mean(deferred):5.1f}"
            )
        base = pipelines["NO-CACHE"]
        hco = pipelines["HC-O"]
        p_base = np.mean([base.search(q, K).stats.page_reads
                          for q in dataset.query_log.test])
        p_hco = np.mean([hco.search(q, K).stats.page_reads
                         for q in dataset.query_log.test])
        print(f"  HC-O leaf caching saves {1 - p_hco / p_base:.0%} of page reads")


if __name__ == "__main__":
    main()
