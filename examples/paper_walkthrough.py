"""Walkthrough of the paper's running examples with this library.

Reproduces, step by step:

* Figure 5 / Table 1 — encoding the 2-d dataset with a 2-bit histogram,
  computing bounds for q=(9,11), pruning p3/p4 (Section 3.2);
* Figure 6 — the four histograms (equi-width, equi-depth, V-optimal,
  optimal-kNN) on the 1-d example, and why only the optimal one achieves
  zero remaining candidates for the 2NN query at q=17;
* Figure 4 — multi-step kNN over lower/upper bound intervals.

Run:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

import numpy as np

from repro.core.bounds import rectangle_bounds
from repro.core.builders import (
    build_equidepth,
    build_equiwidth,
    build_knn_optimal,
    build_voptimal,
)
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.histogram import Histogram
from repro.core.metrics import m3
from repro.core.reduction import reduce_candidates


def section_3_2_example() -> None:
    print("=" * 64)
    print("Figure 5 / Table 1: histogram coding and candidate reduction")
    print("=" * 64)
    points = np.array(
        [[2, 20], [10, 16], [19, 30], [26, 4]], dtype=float
    )  # p1..p4
    query = np.array([9.0, 11.0])
    hist = Histogram(
        lowers=np.array([0.0, 8.0, 16.0, 24.0]),
        uppers=np.array([7.0, 15.0, 23.0, 31.0]),
    )
    encoder = GlobalHistogramEncoder(hist, 2)
    codes = encoder.encode(points)
    for i, code in enumerate(codes, start=1):
        bits = "".join(f"{c:02b}" for c in code)
        print(f"  p{i}' = |{bits[:2]}|{bits[2:]}|   (codes {code.tolist()})")
    lo, hi = encoder.rectangles(codes)
    lb, ub = rectangle_bounds(query, lo, hi)
    print("\n  candidate   [lb .. ub]")
    for i, (low, up) in enumerate(zip(lb, ub), start=1):
        print(f"  p{i}:        [{low:5.2f} .. {up:5.2f}]")
    out = reduce_candidates(np.arange(1, 5), np.ones(4, bool), lb, ub, k=1)
    print(f"\n  ub_k = {out.ub_k:.2f}  ->  pruned: "
          f"{['p%d' % i for i in out.pruned_ids]}")
    print(f"  remaining for refinement: {['p%d' % i for i in out.remaining_ids]}")


def figure_6_example() -> None:
    print("\n" + "=" * 64)
    print("Figure 6: which histogram serves the 2NN query at q=17 best?")
    print("=" * 64)
    data = np.array([3.0, 4.0, 10.0, 12.0, 22.0, 24.0, 30.0, 31.0])
    q = 17.0
    k = 2
    domain = ValueDomain.from_column(data)
    # QR = the 2 nearest values to q (12 and 22); F' counts them.
    fprime = np.zeros(domain.size)
    order = np.argsort(np.abs(data - q))[:k]
    fprime[domain.index_of(data[order])] = 1

    histograms = {
        "equi-width": build_equiwidth(domain, 4),
        "equi-depth": build_equidepth(domain, 4),
        "V-optimal": build_voptimal(domain, 4),
        "optimal-kNN": build_knn_optimal(domain, fprime, 4),
    }
    for name, hist in histograms.items():
        enc = GlobalHistogramEncoder(hist, 1)
        pts = data.reshape(-1, 1)
        lo, hi = enc.rectangles(enc.encode(pts))
        lb, ub = rectangle_bounds(np.array([q]), lo, hi)
        out = reduce_candidates(np.arange(len(data)), np.ones(len(data), bool),
                                lb, ub, k)
        buckets = ", ".join(
            f"[{l:g}..{u:g}]" for l, u in zip(hist.lowers, hist.uppers)
        )
        print(f"\n  {name:12s} buckets: {buckets}")
        print(f"  {'':12s} metric M3 = {m3(hist, domain, fprime):g}, "
              f"remaining candidates = {out.c_refine}")
    print("\n  -> only the optimal-kNN histogram reaches 0 remaining "
          "candidates: its buckets isolate the near-neighbor values 12, 22.")


def figure_4_example() -> None:
    print("\n" + "=" * 64)
    print("Figure 4: multi-step kNN over bound intervals (k=2)")
    print("=" * 64)
    # Candidates p1..p4 with the figure's intervals.
    lb = np.array([0.5, 1.5, 2.5, 4.5])
    ub = np.array([1.0, 3.0, 5.0, 6.0])
    out = reduce_candidates(np.arange(1, 5), np.ones(4, bool), lb, ub, k=2)
    print(f"  lb_2 = {out.lb_k}, ub_2 = {out.ub_k}")
    print(f"  p1 confirmed without I/O (ub < lb_2): "
          f"{out.confirmed_ids.tolist() == [1]}")
    print(f"  p4 pruned (lb > ub_2): {out.pruned_ids.tolist() == [4]}")
    print(f"  only {out.remaining_ids.tolist()} need disk fetches "
          "(the paper: 'It suffices to fetch p2 and p3')")


if __name__ == "__main__":
    section_3_2_example()
    figure_6_example()
    figure_4_example()
