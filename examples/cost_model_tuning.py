"""Scenario: automatic tuning of the code length tau (Section 4).

Sweeps the cache size and shows how the cost model's chosen tau* moves:
small caches prefer short codes (hit ratio wins), large caches prefer
long codes (pruning wins) — until everything fits and more bits stop
helping.  Compares the model's prediction against measurement.

Run:  python examples/cost_model_tuning.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.core.cost_model import optimal_tau
from repro.eval.methods import WorkloadContext, build_caching_pipeline

SEED = 1
K = 10
TAUS = range(4, 13)


def measured_io(dataset, context, tau: int, cache_bytes: int) -> float:
    pipeline = build_caching_pipeline(
        dataset, method="HC-W", tau=tau, cache_bytes=cache_bytes,
        k=K, context=context,
    )
    reads = [
        pipeline.search(q, K).stats.refine_page_reads
        for q in dataset.query_log.test
    ]
    return float(np.mean(reads))


def main() -> None:
    dataset = load_dataset("nus-wide-sim", seed=SEED, scale=0.25)
    context = WorkloadContext.prepare(dataset, k=K, seed=SEED)
    model = context.cost_model()
    print(f"dataset: {dataset.num_points} x {dataset.dim}, "
          f"file {dataset.file_bytes >> 20} MB\n")
    print(f"{'cache':>8s} {'tau*':>5s} {'est io':>8s} "
          f"{'measured io @tau*':>18s} {'measured best tau':>18s}")
    for fraction in (0.05, 0.15, 0.3, 0.6):
        cache_bytes = int(dataset.file_bytes * fraction)
        tau_star = optimal_tau(model, cache_bytes, tau_range=(min(TAUS), max(TAUS)))
        est = model.estimate_io_equiwidth(cache_bytes, tau_star)
        measured = {tau: measured_io(dataset, context, tau, cache_bytes)
                    for tau in TAUS}
        best_tau = min(measured, key=measured.get)
        print(
            f"{fraction:7.0%} {tau_star:5d} {est:8.1f} "
            f"{measured[tau_star]:18.1f} "
            f"{best_tau:8d} ({measured[best_tau]:.1f})"
        )
    print("\nThe model's tau* tracks the measured optimum: small caches "
          "force short codes, larger caches afford finer buckets.")


if __name__ == "__main__":
    main()
