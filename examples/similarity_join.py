"""Scenario: batch analytics — kNN self-join and density clustering.

The paper's conclusion points at kNN joins and density-based clustering
as the next beneficiaries of histogram caching.  Both issue thousands of
similarity lookups against the same dataset, so one approximate cache is
amortized across the whole batch.

This example runs a kNN self-join (near-duplicate detection) and a
cache-accelerated exact DBSCAN over a simulated feature corpus, and
compares I/O with and without the cache.

Run:  python examples/similarity_join.py
"""

from __future__ import annotations

import numpy as np

from repro.core.builders import build_knn_optimal
from repro.core.cache import ApproximateCache, NoCache
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.frequency import compute_qr, fprime_global
from repro.core.search import CachedKNNSearch
from repro.data.synthetic import clustered_dataset
from repro.extensions.clustering import dbscan
from repro.extensions.join import knn_self_join
from repro.index.linear_scan import LinearScanIndex
from repro.storage.pointfile import PointFile

SEED = 9
K = 5
TAU = 7


def main() -> None:
    points = clustered_dataset(1000, 32, n_clusters=6, value_bits=10, seed=SEED)
    print(f"corpus: {points.shape[0]} points, d={points.shape[1]}")

    # The join IS the workload: tune F' on a sample of the join queries.
    from repro.core.domain import ValueDomain

    domain = ValueDomain.from_points(points)
    sample = points[:: max(1, len(points) // 200)]
    qr = compute_qr(points, sample, K)
    fprime = fprime_global(domain, points, qr)
    hist = build_knn_optimal(domain, fprime, 2**TAU)
    encoder = GlobalHistogramEncoder(hist, points.shape[1])

    cache = ApproximateCache(encoder, len(points) * 40, len(points))
    cache.populate(np.arange(len(points)), points)
    index = LinearScanIndex(len(points))

    print("\n-- kNN self-join (near-duplicate detection) --")
    cached_join = knn_self_join(
        CachedKNNSearch(index, PointFile(points), cache), K
    )
    plain_join = knn_self_join(
        CachedKNNSearch(index, PointFile(points), NoCache()), K
    )
    assert np.array_equal(
        np.sort(cached_join.ids, axis=1), np.sort(plain_join.ids, axis=1)
    )
    print(f"  page reads without cache: {plain_join.total_page_reads}")
    print(f"  page reads with HC-O cache: {cached_join.total_page_reads} "
          f"({cached_join.total_page_reads / plain_join.total_page_reads:.0%})")
    # A quick use of the join output: the tightest near-duplicate pair.
    best = np.unravel_index(np.argmin(cached_join.distances), cached_join.distances.shape)
    print(f"  closest pair: point {best[0]} and point "
          f"{cached_join.ids[best]} at distance {cached_join.distances[best]:.1f}")

    print("\n-- exact DBSCAN over cached range queries --")
    eps = float(np.median(cached_join.distances[:, -1]))
    cached_run = dbscan(points, eps, min_pts=K, cache=cache,
                        point_file=PointFile(points))
    plain_run = dbscan(points, eps, min_pts=K, cache=NoCache(),
                       point_file=PointFile(points))
    assert np.array_equal(cached_run.labels, plain_run.labels)
    sizes = np.bincount(cached_run.labels[cached_run.labels >= 0])
    print(f"  eps={eps:.1f}: {cached_run.n_clusters} clusters, "
          f"sizes {sorted(sizes.tolist(), reverse=True)[:6]}, "
          f"{np.sum(cached_run.labels < 0)} noise points")
    print(f"  page reads without cache: {plain_run.page_reads}")
    print(f"  page reads with cache:    {cached_run.page_reads} "
          f"({cached_run.decided_without_io} candidates decided bound-only)")


if __name__ == "__main__":
    main()
