"""Scenario: a disk-bound image-retrieval service with a RAM budget.

The paper's motivating workload: a multimedia search engine answers kNN
queries over millions of GIST descriptors stored on disk; a query log
shows strong temporal locality.  This example sizes the cache like an
operator would:

1. generate a 960-d feature corpus and a Zipf query log,
2. use the Section-4 cost model to pick the code length tau* for the RAM
   budget,
3. deploy an HC-O cache at tau* and report latency percentiles against
   the EXACT cache under the same budget.

Run:  python examples/image_retrieval.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset
from repro.core.cost_model import optimal_tau
from repro.eval.methods import WorkloadContext, build_caching_pipeline

SEED = 3
K = 10
RAM_FRACTION = 0.25


def percentile_report(label: str, times_ms: list[float]) -> None:
    arr = np.asarray(times_ms)
    print(
        f"{label:8s} p50={np.percentile(arr, 50):8.1f} ms   "
        f"p90={np.percentile(arr, 90):8.1f} ms   "
        f"p99={np.percentile(arr, 99):8.1f} ms"
    )


def main() -> None:
    dataset = load_dataset("sogou-sim", seed=SEED, scale=0.25)
    print(
        f"corpus: {dataset.num_points} GIST-like descriptors, d={dataset.dim}, "
        f"{dataset.file_bytes >> 20} MB on disk"
    )
    context = WorkloadContext.prepare(dataset, index_name="c2lsh", k=K, seed=SEED)
    ram_budget = int(dataset.file_bytes * RAM_FRACTION)
    print(f"RAM budget: {ram_budget >> 20} MB ({RAM_FRACTION:.0%} of the file)")

    # Cost-model tuning (Section 4.2): pick tau for this budget.
    model = context.cost_model()
    tau_star = optimal_tau(model, ram_budget, tau_range=(4, 14))
    print(f"cost model selects tau* = {tau_star} "
          f"(estimated refine I/O {model.estimate_io_equiwidth(ram_budget, tau_star):.0f} pages/query)")

    latency = {}
    for method in ("EXACT", "HC-O"):
        pipeline = build_caching_pipeline(
            dataset, method=method, tau=tau_star, cache_bytes=ram_budget,
            k=K, context=context,
        )
        per_query_ms = []
        for query in dataset.query_log.test:
            stats = pipeline.search(query, K).stats
            modeled = (
                stats.refine_page_reads * pipeline.read_latency_s
                + stats.gen_page_reads * pipeline.seq_read_latency_s
            )
            per_query_ms.append(modeled * 1000)
        latency[method] = per_query_ms

    print("\nmodeled query latency:")
    for method, times in latency.items():
        percentile_report(method, times)
    speedup = np.mean(latency["EXACT"]) / max(np.mean(latency["HC-O"]), 1e-9)
    print(f"\nHC-O mean speedup over EXACT caching: {speedup:.1f}x")


if __name__ == "__main__":
    main()
