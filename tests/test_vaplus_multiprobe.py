"""VA+-file (KLT) and multi-probe LSH substrates."""

import numpy as np
import pytest

from repro.index.linear_scan import exact_knn
from repro.index.vafile import VAFileIndex
from repro.index.vaplus import VAPlusFileIndex
from repro.lsh.multiprobe import MultiProbeLSHIndex
from repro.storage.iostats import QueryIOTracker


@pytest.fixture(scope="module")
def correlated():
    """Strongly correlated data: where the KLT rotation pays off."""
    rng = np.random.default_rng(31)
    latent = rng.normal(size=(600, 3))
    mix = rng.normal(size=(3, 16))
    noise = rng.normal(scale=0.05, size=(600, 16))
    return latent @ mix + noise


class TestVAPlusFile:
    def test_candidates_contain_true_knn(self, correlated):
        idx = VAPlusFileIndex(correlated, total_bits=5 * 16)
        for qi in (0, 100, 400):
            q = correlated[qi] + 0.01
            cands = set(idx.candidates(q, 5).tolist())
            truth, _ = exact_knn(correlated, q, 5)
            assert set(truth.tolist()) <= cands

    def test_bounds_sandwich(self, correlated):
        idx = VAPlusFileIndex(correlated, total_bits=4 * 16)
        q = correlated[7] + 0.02
        lb, ub = idx.bounds(q)
        d = np.linalg.norm(correlated - q, axis=1)
        assert np.all(lb <= d + 1e-6)
        assert np.all(d <= ub + 1e-6)

    def test_bit_allocation_follows_variance(self, correlated):
        idx = VAPlusFileIndex(correlated, total_bits=5 * 16)
        # Variances are sorted descending by construction.
        assert np.all(np.diff(idx.variances) <= 1e-9)
        # High-variance dimensions get at least as many bits as the tail.
        assert idx.bits[0] >= idx.bits[-1]
        assert idx.bits.sum() == 5 * 16

    def test_beats_vafile_on_correlated_data(self, correlated):
        """At the same bit budget, the KLT rotation concentrates energy
        and yields fewer phase-1 candidates."""
        budget = 4 * 16
        plus = VAPlusFileIndex(correlated, total_bits=budget)
        plain = VAFileIndex(correlated, bits=4)
        sizes_plus, sizes_plain = [], []
        for qi in range(0, 600, 60):
            q = correlated[qi] + 0.01
            sizes_plus.append(len(plus.candidates(q, 5)))
            sizes_plain.append(len(plain.candidates(q, 5)))
        assert np.mean(sizes_plus) < np.mean(sizes_plain)

    def test_rotation_preserves_distances(self, correlated):
        idx = VAPlusFileIndex(correlated)
        a = idx.transform(correlated[:10])
        d_orig = np.linalg.norm(correlated[0] - correlated[5])
        d_rot = np.linalg.norm(a[0] - a[5])
        assert d_rot == pytest.approx(d_orig)

    def test_disk_scan_charged(self, correlated):
        idx = VAPlusFileIndex(correlated, approximations_on_disk=True)
        t = QueryIOTracker()
        idx.candidates(correlated[0], 3, t)
        assert t.page_reads == idx.scan_pages

    def test_validation(self, correlated):
        with pytest.raises(ValueError):
            VAPlusFileIndex(correlated, total_bits=4)  # < 1 bit/dim
        idx = VAPlusFileIndex(correlated)
        with pytest.raises(ValueError):
            idx.candidates(correlated[0], 0)


class TestMultiProbeLSH:
    @pytest.fixture(scope="class")
    def clustered(self):
        rng = np.random.default_rng(8)
        centers = rng.uniform(0, 100, size=(4, 10))
        return np.concatenate(
            [c + rng.normal(scale=2, size=(150, 10)) for c in centers]
        )

    def test_probing_improves_recall(self, clustered):
        """More probes -> more of the true kNN in the candidate set,
        without adding tables."""
        def recall(n_probes):
            idx = MultiProbeLSHIndex(
                clustered, n_tables=3, n_bits=6, n_probes=n_probes, seed=2
            )
            hit, total = 0, 0
            for qi in range(0, 600, 40):
                q = clustered[qi] + 0.05
                cands = set(idx.candidates(q, 5).tolist())
                truth, _ = exact_knn(clustered, q, 5)
                hit += len(set(truth.tolist()) & cands)
                total += 5
            return hit / total

        assert recall(12) >= recall(1)

    def test_home_bucket_always_probed(self, clustered):
        idx = MultiProbeLSHIndex(clustered, n_probes=1, seed=0)
        q = clustered[3] + 0.01
        cands = idx.candidates(q, 5)
        assert 3 in cands

    def test_io_charged(self, clustered):
        idx = MultiProbeLSHIndex(clustered, seed=0)
        t = QueryIOTracker()
        idx.candidates(clustered[0], 5, t)
        assert t.page_reads >= 1

    def test_validation(self, clustered):
        with pytest.raises(ValueError):
            MultiProbeLSHIndex(clustered, n_probes=0)
        idx = MultiProbeLSHIndex(clustered, seed=0)
        with pytest.raises(ValueError):
            idx.candidates(clustered[0], 0)
