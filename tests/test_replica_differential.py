"""Differential harness: replica-pool serving under seeded chaos is
bit-identical to single-dispatcher FIFO replay.

The guarantee: answers served through a :class:`ReplicaPool` — under
seeded random arrival interleavings *and* seeded random fault schedules
(crashes, stalls, slow batches, hedging on or off) — equal the answers
a twin engine produces by calling ``search()`` once per query, in ids,
distances and ``exact_mask``; and every accepted request completes
exactly once (nothing lost to a dead replica, nothing double-served by
a hedge or a late stalled batch).

Two regimes:

* one replica is kept fault-free — every request must then complete
  *non-degraded* and bit-identical;
* every replica is faulty — requests may come back with certified
  degraded answers (brownout / re-dispatch exhaustion), but completion
  is still exactly-once and every complete answer is still
  bit-identical.

All randomness derives from the seeds below; assertion messages carry
the schedule seed so failures reproduce exactly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import ApproximateCache, CachePolicy
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.engine.engine import QueryEngine
from repro.index.linear_scan import LinearScanIndex
from repro.obs.registry import MetricsRegistry
from repro.serve import (
    FaultyReplica,
    ManualClock,
    ReplicaPool,
    ReplicaPoolConfig,
    ServeConfig,
    Server,
)
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

SEED = 20260808
N_POINTS = 240
DIM = 5
K = 5
N_QUERIES = 12
SCHEDULE_SEEDS = (11, 12, 13, 14)
CACHE_BYTES = 1 << 11


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(N_POINTS, DIM))
    queries = rng.normal(size=(N_QUERIES, DIM))
    frequencies = rng.integers(0, 9, size=N_POINTS).astype(np.int64)
    encoder = GlobalHistogramEncoder(
        build_equidepth(ValueDomain.from_points(points), 16), DIM
    )
    return {
        "points": points,
        "queries": queries,
        "frequencies": frequencies,
        "encoder": encoder,
    }


def make_engine(data) -> QueryEngine:
    """Static-HFF engine; identical builds answer bit-identically."""
    points = data["points"]
    cache = ApproximateCache(
        data["encoder"], CACHE_BYTES, N_POINTS, CachePolicy.HFF
    )
    cache.populate_hff(data["frequencies"], points)
    point_file = PointFile(points, disk=SimulatedDisk(DiskConfig()))
    return QueryEngine.for_index(LinearScanIndex(N_POINTS), point_file, cache)


def random_fault_schedule(rng: np.random.Generator) -> dict:
    """Seeded crash/stall/slow batch schedule for one faulty replica."""
    batches = rng.permutation(np.arange(1, 8))
    n_crash = int(rng.integers(0, 3))
    n_stall = int(rng.integers(0, 2))
    n_slow = int(rng.integers(0, 2))
    crash = batches[:n_crash]
    stall = batches[n_crash:n_crash + n_stall]
    slow = batches[n_crash + n_stall:n_crash + n_stall + n_slow]
    return {
        "crash_batches": tuple(int(b) for b in crash),
        "stall_batches": tuple(int(b) for b in stall),
        "slow_batches": {
            int(b): float(rng.uniform(0.2, 1.5)) for b in slow
        },
    }


def random_arrivals(rng: np.random.Generator) -> tuple[ServeConfig, list]:
    """Seeded batching parameters plus an arrival interleaving."""
    config = ServeConfig(
        max_queue_depth=64,
        max_batch=int(rng.integers(1, 6)),
        max_wait_us=float(rng.choice([0.0, 500.0, 2000.0])),
    )
    order = rng.permutation(N_QUERIES)
    events: list = []
    for idx in order:
        if rng.random() < 0.7:
            events.append(("advance", float(rng.uniform(0.0, 0.002))))
        events.append(("submit", int(idx)))
        if rng.random() < 0.5:
            events.append(("pump",))
    return config, events


def serve_through_pool(data, pool, config, events):
    """Run one interleaving through the pool; force-drain at the end.

    Returns ``(tickets, metrics)`` with tickets as (query_index, ticket)
    in submission order.
    """
    clock = ManualClock()
    metrics = MetricsRegistry()
    server = Server(
        pool, config=config, default_k=K, clock=clock, metrics=metrics
    )
    tickets: list = []
    for event in events:
        if event[0] == "advance":
            clock.advance(event[1])
        elif event[0] == "submit":
            tickets.append(
                (event[1], server.submit(data["queries"][event[1]]))
            )
        else:
            server.pump()
    server.close()  # force-drains queue and in-flight work
    return tickets, metrics


def assert_exactly_once(tickets, metrics, where: str) -> None:
    """Nothing lost, nothing double-served."""
    assert all(t.done for _, t in tickets), f"{where}: a request was lost"
    completed = sum(
        metrics.value("serve_requests_total", tier=tier)
        for tier in ("default",)
    )
    assert completed == len(tickets), (
        f"{where}: {completed} completions for {len(tickets)} requests"
    )


@pytest.mark.parametrize("schedule_seed", SCHEDULE_SEEDS)
def test_chaos_with_healthy_twin_is_bit_identical(data, schedule_seed):
    """One fault-free replica: every answer complete and bit-identical."""
    rng = np.random.default_rng(schedule_seed)
    faults = random_fault_schedule(rng)
    hedge = float(rng.choice([0.0, 0.3]))
    config, events = random_arrivals(rng)
    pool = ReplicaPool(
        [FaultyReplica(make_engine(data), **faults), make_engine(data)],
        config=ReplicaPoolConfig(
            stall_budget_s=0.5,
            hedge_delay_s=hedge,
            restart_base_s=0.05,
            max_redispatch=10,
        ),
    )
    where = (
        f"schedule={schedule_seed} faults={faults} hedge={hedge} "
        f"batch<={config.max_batch} wait={config.max_wait_us}us"
    )
    tickets, metrics = serve_through_pool(data, pool, config, events)
    assert_exactly_once(tickets, metrics, where)

    twin = make_engine(data)
    for idx, ticket in tickets:
        result = ticket.response.result
        assert result.outcome.complete, (
            f"{where}: query {idx} degraded ({result.outcome.reason}) "
            "despite a healthy replica"
        )
        base = twin.search(data["queries"][idx], K)
        assert np.array_equal(base.ids, result.ids), (
            f"{where} query={idx}: ids {base.ids} != {result.ids}"
        )
        assert np.array_equal(base.distances, result.distances), (
            f"{where} query={idx}: distances differ"
        )
        assert np.array_equal(base.exact_mask, result.exact_mask), (
            f"{where} query={idx}: exact_mask differs"
        )


@pytest.mark.parametrize("schedule_seed", SCHEDULE_SEEDS)
def test_chaos_everywhere_is_exactly_once(data, schedule_seed):
    """Every replica faulty: completion stays exactly-once; complete
    answers stay bit-identical; degraded answers carry known reasons."""
    rng = np.random.default_rng(schedule_seed + 1000)
    config, events = random_arrivals(rng)
    pool = ReplicaPool(
        [
            FaultyReplica(make_engine(data), **random_fault_schedule(rng)),
            FaultyReplica(make_engine(data), **random_fault_schedule(rng)),
        ],
        config=ReplicaPoolConfig(
            stall_budget_s=0.5, restart_base_s=0.05, max_redispatch=4
        ),
    )
    where = f"schedule={schedule_seed}+chaos-everywhere"
    tickets, metrics = serve_through_pool(data, pool, config, events)
    assert_exactly_once(tickets, metrics, where)

    twin = make_engine(data)
    for idx, ticket in tickets:
        result = ticket.response.result
        if not result.outcome.complete:
            assert result.outcome.reason in (
                "brownout", "replica_failure", "deadline"
            ), f"{where}: unknown degraded reason {result.outcome.reason}"
            continue
        base = twin.search(data["queries"][idx], K)
        assert np.array_equal(base.ids, result.ids), (
            f"{where} query={idx}: ids differ"
        )
        assert np.array_equal(base.distances, result.distances), (
            f"{where} query={idx}: distances differ"
        )


def test_fault_schedules_actually_vary():
    """Guard: the generator produces distinct fault shapes across seeds
    (the suite must not silently degenerate to fault-free runs)."""
    shapes = set()
    injected = 0
    for schedule_seed in SCHEDULE_SEEDS:
        rng = np.random.default_rng(schedule_seed)
        faults = random_fault_schedule(rng)
        shapes.add(
            (
                faults["crash_batches"],
                faults["stall_batches"],
                tuple(sorted(faults["slow_batches"])),
            )
        )
        injected += (
            len(faults["crash_batches"])
            + len(faults["stall_batches"])
            + len(faults["slow_batches"])
        )
    assert len(shapes) > 1
    assert injected > 0
