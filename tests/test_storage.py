"""Storage substrate: disk accounting, point files, orderings."""

import numpy as np
import pytest

from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.iostats import IOStats, QueryIOTracker
from repro.storage.ordering import (
    clustered_order,
    make_order,
    raw_order,
    sorted_key_order,
)
from repro.storage.pointfile import PointFile


class TestIOStats:
    def test_delta_and_add(self):
        a = IOStats(10, 5)
        b = IOStats(3, 2)
        assert a.delta(b).page_reads == 7
        assert (a + b).point_fetches == 7

    def test_reset(self):
        s = IOStats(4, 4)
        s.reset()
        assert s.page_reads == 0 and s.point_fetches == 0


class TestQueryIOTracker:
    def test_dedup_within_query(self):
        t = QueryIOTracker()
        assert t.needs_read(3)
        assert not t.needs_read(3)
        assert t.needs_read(4)
        assert t.page_reads == 2


class TestSimulatedDisk:
    def test_counts_and_time(self):
        disk = SimulatedDisk(DiskConfig(read_latency_s=0.01))
        disk.read_page(0)
        disk.read_page(1)
        assert disk.stats.page_reads == 2
        assert disk.modeled_time() == pytest.approx(0.02)

    def test_tracker_dedup(self):
        disk = SimulatedDisk()
        t = QueryIOTracker()
        disk.read_page(5, t)
        disk.read_page(5, t)
        assert disk.stats.page_reads == 1

    def test_rejects_negative_page(self):
        with pytest.raises(ValueError):
            SimulatedDisk().read_page(-1)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DiskConfig(page_size=0)
        with pytest.raises(ValueError):
            DiskConfig(read_latency_s=-1)


class TestPointFile:
    @pytest.fixture()
    def pf(self):
        rng = np.random.default_rng(0)
        return PointFile(rng.normal(size=(100, 8)), value_bytes=4)

    def test_layout(self, pf):
        # 8 dims x 4 bytes = 32 bytes/point -> 128 points per 4 KB page.
        assert pf.point_size == 32
        assert pf.points_per_page == 128
        assert pf.file_bytes == 3200

    def test_fetch_returns_points(self, pf):
        out = pf.fetch(np.array([3, 7]))
        assert np.array_equal(out, pf.points[[3, 7]])

    def test_io_charged_per_page(self, pf):
        t = QueryIOTracker()
        pf.fetch(np.arange(50), t)
        assert t.page_reads == 1  # all on one page
        assert t.point_fetches == 50

    def test_big_points_span_pages(self):
        pts = np.zeros((4, 2048))  # 8 KB per point at 4 B values
        pf = PointFile(pts, value_bytes=4)
        assert pf.pages_per_point == 2
        t = QueryIOTracker()
        pf.fetch(np.array([1]), t)
        assert t.page_reads == 2

    def test_out_of_range(self, pf):
        with pytest.raises(IndexError):
            pf.fetch(np.array([500]))

    def test_ordering_changes_pages(self):
        pts = np.zeros((8, 1024))  # 1 point per page
        order = np.array([7, 6, 5, 4, 3, 2, 1, 0])
        pf = PointFile(pts, order=order, value_bytes=4)
        assert pf.page_of(7) == 0
        assert pf.page_of(0) == 7

    def test_bad_order_rejected(self):
        with pytest.raises(ValueError):
            PointFile(np.zeros((3, 2)), order=np.array([0, 0, 2]))

    def test_clustered_order_reduces_io_for_cluster_queries(self):
        """Points of one cluster share pages under clustered ordering."""
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, size=(64, 32))
        b = rng.normal(50, 1, size=(64, 32))
        pts = np.empty((128, 32))
        pts[0::2] = a
        pts[1::2] = b  # interleaved: raw ordering mixes clusters
        order = clustered_order(pts, n_clusters=2, seed=0)
        pf_raw = PointFile(pts, value_bytes=4)
        pf_clu = PointFile(pts, order=order, value_bytes=4)
        cluster_a_ids = np.arange(0, 128, 2)
        t_raw, t_clu = QueryIOTracker(), QueryIOTracker()
        pf_raw.fetch(cluster_a_ids, t_raw)
        pf_clu.fetch(cluster_a_ids, t_clu)
        assert t_clu.page_reads <= t_raw.page_reads


class TestOrderings:
    def test_raw_order(self):
        assert raw_order(4).tolist() == [0, 1, 2, 3]

    def test_all_orderings_are_permutations(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(60, 5))
        for name in ("raw", "clustered", "sortedkey"):
            order = make_order(name, pts, seed=0)
            assert sorted(order.tolist()) == list(range(60))

    def test_sorted_key_groups_similar_points(self):
        rng = np.random.default_rng(3)
        a = rng.normal(0, 0.5, size=(30, 8))
        b = rng.normal(30, 0.5, size=(30, 8))
        pts = np.concatenate([a, b])
        order = sorted_key_order(pts, seed=1)
        # Positions of cluster-a points should be contiguous-ish: measure
        # how often adjacent file slots hold same-cluster points.
        is_a = order < 30
        agreements = np.sum(is_a[:-1] == is_a[1:])
        assert agreements >= 50  # 59 max; random would be ~29

    def test_unknown_ordering(self):
        with pytest.raises(ValueError):
            make_order("bogus", np.zeros((3, 2)))
