"""M-tree index, SK-LSH index, and the query-result-cache baseline."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import ApproximateCache, LeafNodeCache, NoCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.resultcache import ResultCache, ResultCachedSearch
from repro.core.search import CachedKNNSearch
from repro.index.linear_scan import LinearScanIndex, exact_knn
from repro.index.mtree import MTreeIndex
from repro.lsh.sklsh import SKLSHIndex
from repro.storage.iostats import QueryIOTracker
from repro.storage.pointfile import PointFile
from tests.conftest import assert_valid_knn


class TestMTree:
    @pytest.fixture(scope="class")
    def index(self, micro_points):
        return MTreeIndex(micro_points, seed=0)

    @pytest.mark.parametrize("k", [1, 5, 12])
    def test_exactness(self, index, micro_points, k):
        for q in micro_points[::70]:
            res = index.search(q + 0.3, k, tracker=QueryIOTracker())
            assert_valid_knn(micro_points, q + 0.3, k, res.ids)

    def test_leaf_stream_monotone(self, index, micro_points):
        bounds = [b for b, _ in index.leaf_stream(micro_points[4])]
        assert all(a <= b + 1e-12 for a, b in zip(bounds, bounds[1:]))

    def test_covering_radii_valid(self, index, micro_points):
        """Every leaf member lies within its routing ball."""
        def walk(node):
            if node.is_leaf:
                ids, pts = index.leaf_contents(node.leaf_id)
                d = np.linalg.norm(pts - node.pivot, axis=1)
                assert np.all(d <= node.radius + 1e-9)
                return
            for child in node.children:
                walk(child)
        walk(index.root)

    def test_leaves_partition_points(self, index, micro_points):
        all_ids = np.concatenate(
            [index.leaf_contents(i)[0] for i in range(index.num_leaves)]
        )
        assert sorted(all_ids.tolist()) == list(range(len(micro_points)))

    def test_leaf_caching_reduces_io(self, index, micro_points, micro_dataset):
        dom = ValueDomain.from_points(micro_points)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 16), micro_points.shape[1])
        cache = LeafNodeCache(enc, 1 << 13)
        freqs = index.leaf_access_frequencies(
            micro_dataset.query_log.workload[:40], 5
        )
        cache.populate_by_frequency(freqs, index.leaf_contents)
        total_cached, total_plain = 0, 0
        for q in micro_dataset.query_log.test:
            t1, t2 = QueryIOTracker(), QueryIOTracker()
            r = index.search(q, 5, cache=cache, tracker=t1)
            index.search(q, 5, cache=None, tracker=t2)
            assert_valid_knn(micro_points, q, 5, r.ids)
            total_cached += t1.page_reads
            total_plain += t2.page_reads
        assert total_cached <= total_plain


class TestSKLSH:
    @pytest.fixture(scope="class")
    def index(self, micro_points):
        return SKLSHIndex(micro_points, n_orders=4, probe_width=80, seed=1)

    def test_recall_reasonable(self, index, micro_points):
        hit, total = 0, 0
        for qi in range(0, len(micro_points), 40):
            q = micro_points[qi] + 0.05
            cands = set(index.candidates(q, 5).tolist())
            truth, _ = exact_knn(micro_points, q, 5)
            hit += len(set(truth.tolist()) & cands)
            total += 5
        assert hit / total >= 0.6  # LSH-quality recall, not exact

    def test_probe_reads_contiguous_pages(self, index, micro_points):
        t = QueryIOTracker()
        index.candidates(micro_points[0], 5, t)
        # 4 orders x 80 ids at 512 ids/page: at most 2 pages per order.
        assert 1 <= t.page_reads <= 8

    def test_candidate_count_bounded(self, index, micro_points):
        cands = index.candidates(micro_points[3], 5)
        assert len(cands) <= 4 * 80

    def test_validation(self, micro_points):
        with pytest.raises(ValueError):
            SKLSHIndex(micro_points, n_orders=0)
        idx = SKLSHIndex(micro_points, seed=0)
        with pytest.raises(ValueError):
            idx.candidates(micro_points[0], 0)


class TestResultCache:
    @pytest.fixture()
    def searcher(self, micro_points):
        return CachedKNNSearch(
            LinearScanIndex(len(micro_points)), PointFile(micro_points), NoCache()
        )

    def test_repeat_query_is_free(self, searcher, micro_points):
        cache = ResultCache(1 << 16, micro_points.shape[1])
        wrapped = ResultCachedSearch(searcher, cache)
        q = micro_points[5]
        first = wrapped.search(q, 4)
        assert first.stats.refine_page_reads > 0
        second = wrapped.search(q, 4)
        assert second.stats.refine_page_reads == 0
        assert np.array_equal(second.ids, first.ids)
        assert cache.stats().hits == 1

    def test_different_k_misses(self, searcher, micro_points):
        cache = ResultCache(1 << 16, micro_points.shape[1])
        wrapped = ResultCachedSearch(searcher, cache)
        q = micro_points[5]
        wrapped.search(q, 4)
        wrapped.search(q, 5)
        assert cache.stats().hits == 0

    def test_lru_eviction_under_budget(self, searcher, micro_points):
        d = micro_points.shape[1]
        entry_cost = 8 * (d + 2 * 3) + 16
        cache = ResultCache(entry_cost * 2, d)
        wrapped = ResultCachedSearch(searcher, cache)
        for qi in (0, 1, 2):
            wrapped.search(micro_points[qi], 3)
        assert cache.num_entries == 2
        # Oldest (query 0) was evicted.
        assert cache.get(micro_points[0], 3) is None
        assert cache.get(micro_points[2], 3) is not None

    def test_oversized_entry_rejected(self, searcher, micro_points):
        cache = ResultCache(8, micro_points.shape[1])
        wrapped = ResultCachedSearch(searcher, cache)
        wrapped.search(micro_points[0], 3)
        assert cache.num_entries == 0

    def test_point_cache_generalizes_result_cache_does_not(self, micro_points):
        """Near-duplicate (but not identical) queries: the point cache
        still saves I/O, the result cache saves nothing."""
        dom = ValueDomain.from_points(micro_points)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 32), micro_points.shape[1])
        point_cache = ApproximateCache(enc, 1 << 14, len(micro_points))
        point_cache.populate(np.arange(len(micro_points)), micro_points)
        base_pc = CachedKNNSearch(
            LinearScanIndex(len(micro_points)), PointFile(micro_points), point_cache
        )
        base_rc = CachedKNNSearch(
            LinearScanIndex(len(micro_points)), PointFile(micro_points), NoCache()
        )
        rc = ResultCachedSearch(base_rc, ResultCache(1 << 16, micro_points.shape[1]))
        q1 = micro_points[9]
        q2 = micro_points[9] + 0.5  # near-duplicate, different key
        rc.search(q1, 4)
        miss = rc.search(q2, 4)
        hit_pc = base_pc.search(q2, 4)
        assert miss.stats.refine_page_reads > hit_pc.stats.refine_page_reads
