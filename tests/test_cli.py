"""CLI: argument handling and command output."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.method == "HC-O"
        assert args.dataset == "tiny"
        assert args.tau == 8

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--method", "HC-X"])

    def test_compare_accepts_method_list(self):
        args = build_parser().parse_args(
            ["compare", "--methods", "EXACT", "HC-O"]
        )
        assert args.methods == ["EXACT", "HC-O"]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "sogou-sim" in out and "HC-O" in out

    def test_experiment_runs(self, capsys):
        rc = main([
            "experiment", "--dataset", "tiny", "--scale", "0.25",
            "--method", "HC-D", "--tau", "5", "--k", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HC-D" in out and "t_response_s" in out

    def test_compare_runs(self, capsys):
        rc = main([
            "compare", "--dataset", "tiny", "--scale", "0.25", "--tau", "5",
            "--k", "5", "--methods", "NO-CACHE", "HC-O",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NO-CACHE" in out and "HC-O" in out

    def test_tune_runs(self, capsys):
        rc = main(["tune", "--dataset", "tiny", "--scale", "0.25", "--k", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tau*" in out

    def test_experiment_metrics_table_and_json(self, capsys, tmp_path):
        out_path = tmp_path / "metrics.json"
        rc = main([
            "experiment", "--dataset", "tiny", "--scale", "0.25",
            "--method", "HC-O", "--k", "5",
            "--metrics", "--metrics-out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "engine_queries_total" in out
        assert "cache_hits_total" in out
        payload = json.loads(out_path.read_text())
        assert "observed_vs_predicted" in payload
        names = {m["name"] for m in payload["metrics"]}
        assert "engine_queries_total" in names and "engine_rho_hit" in names

    def test_experiment_metrics_prom_format(self, capsys):
        rc = main([
            "experiment", "--dataset", "tiny", "--scale", "0.25",
            "--method", "NO-CACHE", "--k", "5",
            "--metrics", "--metrics-format", "prom",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "# TYPE engine_queries_total counter" in out
        assert "engine_phase_seconds_bucket" in out

    def test_compare_metrics_out(self, capsys, tmp_path):
        out_path = tmp_path / "cmp.json"
        rc = main([
            "compare", "--dataset", "tiny", "--scale", "0.25", "--k", "5",
            "--methods", "NO-CACHE", "HC-O", "--metrics-out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "--- metrics: HC-O ---" in out
        payload = json.loads(out_path.read_text())
        assert sorted(payload["methods"]) == ["HC-O", "NO-CACHE"]
        for snap in payload["methods"].values():
            assert "observed_vs_predicted" in snap


class TestServeCommand:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.method == "HC-O"
        assert args.rate == 0.0
        assert args.max_batch == 32
        assert args.queue_depth == 256

    def test_serve_saturating_smoke(self, capsys, tmp_path):
        out_path = tmp_path / "serve.json"
        rc = main([
            "serve", "--dataset", "tiny", "--scale", "0.25", "--k", "5",
            "--requests", "24", "--max-batch", "8", "--rate", "0",
            "--metrics", "--metrics-out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "serve" in out and "p99_ms" in out
        assert "serve_requests_total" in out
        payload = json.loads(out_path.read_text())
        assert payload["load"]["served"] == 24
        assert payload["load"]["rejected"] == 0
        # Saturating load fills micro-batches to max_batch.
        assert payload["load"]["mean_batch_size"] == 8.0
        assert payload["serve"]["tiers"]["default"]["served"] == 24

    def test_serve_with_deadline_tier(self, capsys):
        rc = main([
            "serve", "--dataset", "tiny", "--scale", "0.25", "--k", "5",
            "--requests", "8", "--deadline-ms", "1000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degraded" in out


class TestSnapshotServe:
    """``snapshot serve`` replays through the Server: --deadline-ms and
    --metrics plumb all the way down (the closed-loop regression)."""

    @pytest.fixture(scope="class")
    def snapshot_path(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("snap") / "snap"
        rc = main([
            "snapshot", "build", str(path), "--dataset", "tiny",
            "--scale", "0.25", "--method", "HC-O", "--k", "5",
        ])
        assert rc == 0
        return path

    def test_serve_with_metrics(self, snapshot_path, capsys, tmp_path):
        out_path = tmp_path / "snapserve.json"
        rc = main([
            "snapshot", "serve", str(snapshot_path), "--limit", "6",
            "--metrics", "--metrics-out", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "served from" in out
        assert "serve_requests_total" in out
        payload = json.loads(out_path.read_text())
        assert payload["serve"]["tiers"]["default"]["served"] == 6
        assert payload["serve"]["tiers"]["default"]["degraded"] == 0

    def test_deadline_ms_degrades(self, snapshot_path, capsys):
        # A budget far below any real query time: every replayed query
        # must degrade (charged from admission) instead of crashing.
        rc = main([
            "snapshot", "serve", str(snapshot_path), "--limit", "4",
            "--deadline-ms", "0.0001",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degraded answers: 4/4" in out

    def test_generous_deadline_stays_complete(self, snapshot_path, capsys):
        rc = main([
            "snapshot", "serve", str(snapshot_path), "--limit", "4",
            "--deadline-ms", "60000",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "degraded answers" not in out
