"""CLI: argument handling and command output."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_defaults(self):
        args = build_parser().parse_args(["experiment"])
        assert args.method == "HC-O"
        assert args.dataset == "tiny"
        assert args.tau == 8

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--method", "HC-X"])

    def test_compare_accepts_method_list(self):
        args = build_parser().parse_args(
            ["compare", "--methods", "EXACT", "HC-O"]
        )
        assert args.methods == ["EXACT", "HC-O"]


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "tiny" in out and "sogou-sim" in out and "HC-O" in out

    def test_experiment_runs(self, capsys):
        rc = main([
            "experiment", "--dataset", "tiny", "--scale", "0.25",
            "--method", "HC-D", "--tau", "5", "--k", "5",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "HC-D" in out and "t_response_s" in out

    def test_compare_runs(self, capsys):
        rc = main([
            "compare", "--dataset", "tiny", "--scale", "0.25", "--tau", "5",
            "--k", "5", "--methods", "NO-CACHE", "HC-O",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "NO-CACHE" in out and "HC-O" in out

    def test_tune_runs(self, capsys):
        rc = main(["tune", "--dataset", "tiny", "--scale", "0.25", "--k", "5"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "tau*" in out
