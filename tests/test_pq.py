"""Bound-giving product quantization."""

import numpy as np
import pytest

from repro.core.bounds import rectangle_bounds
from repro.core.cache import ApproximateCache
from repro.core.pq import PQEncoder
from repro.core.search import CachedKNNSearch
from repro.index.linear_scan import LinearScanIndex
from repro.storage.pointfile import PointFile
from tests.conftest import assert_valid_knn


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(23)
    centers = rng.uniform(0, 200, size=(5, 12))
    return np.rint(
        np.concatenate([c + rng.normal(scale=6, size=(120, 12)) for c in centers])
    )


class TestPQEncoder:
    def test_geometry(self, points):
        enc = PQEncoder(points, n_subspaces=4, bits=5)
        assert enc.n_fields == 4
        assert enc.bits == 5
        assert enc.bits_per_point == 20  # far below d * tau

    def test_training_points_contained(self, points):
        enc = PQEncoder(points, n_subspaces=4, bits=5)
        codes = enc.encode(points)
        lo, hi = enc.rectangles(codes)
        assert np.all(lo <= points + 1e-9)
        assert np.all(points <= hi + 1e-9)

    def test_bounds_sandwich_distances(self, points):
        enc = PQEncoder(points, n_subspaces=3, bits=4)
        codes = enc.encode(points)
        lo, hi = enc.rectangles(codes)
        q = points[0] + 1.0
        lb, ub = rectangle_bounds(q, lo, hi)
        d = np.linalg.norm(points - q, axis=1)
        assert np.all(lb <= d + 1e-9)
        assert np.all(d <= ub + 1e-9)

    def test_uneven_blocks(self, points):
        enc = PQEncoder(points, n_subspaces=5, bits=3)  # 12 dims / 5 blocks
        codes = enc.encode(points[:10])
        lo, hi = enc.rectangles(codes)
        assert lo.shape == (10, 12)

    def test_more_bits_tighter_cells(self, points):
        coarse = PQEncoder(points, n_subspaces=4, bits=2, seed=1)
        fine = PQEncoder(points, n_subspaces=4, bits=6, seed=1)

        def avg_width(enc):
            codes = enc.encode(points)
            lo, hi = enc.rectangles(codes)
            return float(np.mean(hi - lo))

        assert avg_width(fine) < avg_width(coarse)

    def test_validation(self, points):
        with pytest.raises(ValueError):
            PQEncoder(points, n_subspaces=0)
        with pytest.raises(ValueError):
            PQEncoder(points, n_subspaces=99)
        with pytest.raises(ValueError):
            PQEncoder(points, bits=0)
        enc = PQEncoder(points, n_subspaces=2, bits=3)
        with pytest.raises(ValueError):
            enc.encode(points[:, :5])

    def test_codebook_bytes_positive(self, points):
        assert PQEncoder(points, n_subspaces=2, bits=3).codebook_bytes() > 0


class TestPQInPipeline:
    def test_pq_cache_preserves_results(self, points):
        enc = PQEncoder(points, n_subspaces=4, bits=5)
        cache = ApproximateCache(enc, 1 << 14, len(points))
        cache.populate(np.arange(len(points)), points)
        searcher = CachedKNNSearch(
            LinearScanIndex(len(points)), PointFile(points), cache
        )
        for qi in (0, 99, 300):
            q = points[qi] + 0.4
            res = searcher.search(q, 6)
            assert_valid_knn(points, q, 6, res.ids)

    def test_pq_cache_saves_io(self, points):
        from repro.core.cache import NoCache

        enc = PQEncoder(points, n_subspaces=4, bits=5)
        cache = ApproximateCache(enc, 1 << 14, len(points))
        cache.populate(np.arange(len(points)), points)
        cached = CachedKNNSearch(
            LinearScanIndex(len(points)), PointFile(points), cache
        )
        plain = CachedKNNSearch(
            LinearScanIndex(len(points)), PointFile(points), NoCache()
        )
        q = points[3] + 0.2
        assert (
            cached.search(q, 5).stats.refine_page_reads
            < plain.search(q, 5).stats.refine_page_reads
        )
