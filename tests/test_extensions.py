"""Extensions: cached kNN join, range search, DBSCAN."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import ApproximateCache, ExactCache, NoCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.search import CachedKNNSearch
from repro.extensions.clustering import dbscan
from repro.extensions.join import knn_join, knn_self_join
from repro.extensions.ranges import range_search
from repro.index.linear_scan import LinearScanIndex
from repro.storage.pointfile import PointFile
from tests.conftest import assert_valid_knn


@pytest.fixture(scope="module")
def world(micro_points):
    pf = PointFile(micro_points)
    index = LinearScanIndex(len(micro_points))
    dom = ValueDomain.from_points(micro_points)
    encoder = GlobalHistogramEncoder(build_equidepth(dom, 32), micro_points.shape[1])
    cache = ApproximateCache(encoder, 1 << 14, len(micro_points))
    cache.populate(np.arange(len(micro_points)), micro_points)
    return micro_points, pf, index, cache


class TestKnnJoin:
    def test_join_matches_bruteforce(self, world):
        points, pf, index, cache = world
        searcher = CachedKNNSearch(index, pf, cache)
        queries = points[:12] + 0.25
        result = knn_join(queries, searcher, k=4)
        assert result.ids.shape == (12, 4)
        for q, row in zip(queries, result.ids):
            assert_valid_knn(points, q, 4, row.tolist())

    def test_cache_reduces_join_io(self, world):
        points, _, index, cache = world
        queries = points[:30] + 0.25
        cached = knn_join(queries, CachedKNNSearch(index, PointFile(points), cache), 4)
        plain = knn_join(queries, CachedKNNSearch(index, PointFile(points), NoCache()), 4)
        assert np.array_equal(
            np.sort(cached.ids, axis=1), np.sort(plain.ids, axis=1)
        )
        assert cached.total_page_reads < plain.total_page_reads
        assert cached.avg_page_reads < plain.avg_page_reads

    def test_self_join_excludes_self(self, world):
        points, pf, index, cache = world
        searcher = CachedKNNSearch(index, pf, cache)
        result = knn_self_join(searcher, k=3)
        for i, row in enumerate(result.ids[:40]):
            assert i not in row.tolist()
            assert len([x for x in row if x >= 0]) == 3

    def test_self_join_including_self(self, world):
        points, pf, index, cache = world
        searcher = CachedKNNSearch(index, pf, cache)
        result = knn_self_join(searcher, k=3, exclude_self=False)
        # Each point is its own nearest neighbor (distance 0)...
        # unless it has an exact duplicate; membership is the invariant.
        for i in range(20):
            d = np.linalg.norm(points - points[i], axis=1)
            kth = np.sort(d)[2]
            assert np.all(d[result.ids[i]] <= kth + 1e-9)

    def test_invalid_k(self, world):
        points, pf, index, cache = world
        with pytest.raises(ValueError):
            knn_join(points[:2], CachedKNNSearch(index, pf, cache), 0)


class TestRangeSearch:
    def test_matches_bruteforce(self, world):
        points, pf, index, cache = world
        all_ids = np.arange(len(points))
        for qi in (0, 57, 200):
            q = points[qi] + 0.4
            for eps in (5.0, 25.0, 80.0):
                result = range_search(q, eps, all_ids, cache, pf)
                d = np.linalg.norm(points - q, axis=1)
                truth = np.flatnonzero(d <= eps)
                assert np.array_equal(result.ids, truth)

    def test_exact_cache_never_fetches(self, world):
        points, pf, index, _ = world
        cache = ExactCache(points.shape[1], 1 << 20, len(points))
        cache.populate(np.arange(len(points)), points)
        result = range_search(points[0], 30.0, np.arange(len(points)), cache, pf)
        assert result.fetched == 0
        assert result.page_reads == 0

    def test_no_cache_fetches_everything(self, world):
        points, pf, _, _ = world
        result = range_search(
            points[0], 30.0, np.arange(len(points)), NoCache(), pf
        )
        assert result.fetched == len(points)
        assert result.confirmed_without_io == 0

    def test_counts_add_up(self, world):
        points, pf, _, cache = world
        result = range_search(points[3], 40.0, np.arange(100), cache, pf)
        assert (
            result.confirmed_without_io + result.pruned_without_io + result.fetched
            == 100
        )

    def test_empty_candidates(self, world):
        points, pf, _, cache = world
        result = range_search(points[0], 10.0, np.empty(0, dtype=int), cache, pf)
        assert result.ids.size == 0

    def test_negative_eps(self, world):
        points, pf, _, cache = world
        with pytest.raises(ValueError):
            range_search(points[0], -1.0, np.arange(3), cache, pf)


class TestDBSCAN:
    @pytest.fixture(scope="class")
    def blobs(self):
        rng = np.random.default_rng(42)
        a = rng.normal((0, 0), 1.0, size=(60, 2))
        b = rng.normal((25, 25), 1.0, size=(60, 2))
        noise = rng.uniform(-10, 40, size=(5, 2))
        pts = np.concatenate([a, b, noise])
        return np.round(pts, 2)

    def _cache(self, pts, approximate=True):
        if not approximate:
            cache = ExactCache(pts.shape[1], 1 << 20, len(pts))
            cache.populate(np.arange(len(pts)), pts)
            return cache
        dom = ValueDomain.from_points(pts)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 64), pts.shape[1])
        cache = ApproximateCache(enc, 1 << 16, len(pts))
        cache.populate(np.arange(len(pts)), pts)
        return cache

    def test_recovers_two_blobs(self, blobs):
        pf = PointFile(blobs)
        result = dbscan(blobs, eps=3.0, min_pts=5, cache=self._cache(blobs), point_file=pf)
        assert result.n_clusters == 2
        # The two blobs land in different clusters.
        assert len(set(result.labels[:60].tolist())) == 1
        assert len(set(result.labels[60:120].tolist())) == 1
        assert result.labels[0] != result.labels[60]

    def test_matches_uncached_clustering(self, blobs):
        pf1, pf2 = PointFile(blobs), PointFile(blobs)
        cached = dbscan(blobs, 3.0, 5, self._cache(blobs), pf1)
        plain = dbscan(blobs, 3.0, 5, NoCache(), pf2)
        assert np.array_equal(cached.labels, plain.labels)
        assert cached.page_reads <= plain.page_reads
        assert cached.decided_without_io > 0

    def test_all_noise_when_eps_tiny(self, blobs):
        pf = PointFile(blobs)
        result = dbscan(blobs, eps=1e-6, min_pts=5, cache=self._cache(blobs), point_file=pf)
        assert result.n_clusters == 0
        assert np.all(result.labels == -1)

    def test_single_cluster_when_eps_huge(self, blobs):
        pf = PointFile(blobs)
        result = dbscan(blobs, eps=1e6, min_pts=2, cache=self._cache(blobs), point_file=pf)
        assert result.n_clusters == 1
        assert np.all(result.labels == 0)

    def test_invalid_min_pts(self, blobs):
        with pytest.raises(ValueError):
            dbscan(blobs, 1.0, 0, NoCache(), PointFile(blobs))
