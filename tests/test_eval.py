"""Evaluation harness: contexts, method lineup, runner, reporting."""

import numpy as np
import pytest

from repro.core.cache import CachePolicy
from repro.eval.methods import (
    METHOD_NAMES,
    WorkloadContext,
    build_caching_pipeline,
    build_tree_pipeline,
    make_cache,
)
from repro.eval.reporting import format_table, write_csv
from repro.eval.runner import Experiment, measure_m1, summarize
from tests.conftest import assert_valid_knn


class TestWorkloadContext:
    def test_prepared_quantities(self, tiny_context):
        ctx = tiny_context
        assert ctx.avg_candidates > 0
        assert ctx.d_max > 0
        assert ctx.frequencies.sum() > 0
        assert len(ctx.candidate_sets) == len(ctx.distinct_queries)
        assert ctx.fprime.shape == (ctx.dataset.domain.size,)

    def test_frequencies_weighted_by_popularity(self, tiny_context):
        # Total frequency mass equals sum over queries of |C(q)| x weight.
        expect = sum(
            w * len(c)
            for w, c in zip(tiny_context.query_weights, tiny_context.candidate_sets)
        )
        assert tiny_context.frequencies.sum() == expect

    def test_cost_model_construction(self, tiny_context):
        model = tiny_context.cost_model()
        assert model.dim == tiny_context.dataset.dim
        assert model.avg_candidates == tiny_context.avg_candidates

    def test_histograms_memoized(self, tiny_context):
        a = tiny_context.histogram("equidepth", 5)
        b = tiny_context.histogram("equidepth", 5)
        assert a is b

    def test_requires_query_log(self, tiny_dataset):
        bare = tiny_dataset.with_query_log(tiny_dataset.query_log)
        object.__setattr__(bare, "query_log", None)
        with pytest.raises(ValueError):
            WorkloadContext.prepare(bare)


class TestMethodLineup:
    @pytest.mark.parametrize("method", METHOD_NAMES)
    def test_every_method_builds_and_answers(self, tiny_dataset, tiny_context, method):
        pipeline = build_caching_pipeline(
            tiny_dataset, method=method, tau=5, cache_bytes=30_000,
            context=tiny_context,
        )
        q = tiny_dataset.query_log.test[0]
        res = pipeline.search(q, 10)
        assert len(res.ids) == 10
        assert res.stats.num_candidates > 0

    def test_results_invariant_across_methods(self, tiny_dataset, tiny_context):
        """Caching never changes the answer (paper Section 2.2)."""
        q = tiny_dataset.query_log.test[3]
        reference = None
        for method in ("NO-CACHE", "EXACT", "HC-W", "HC-O", "C-VA"):
            pipeline = build_caching_pipeline(
                tiny_dataset, method=method, tau=5, cache_bytes=30_000,
                context=tiny_context,
            )
            got = frozenset(pipeline.search(q, 10).ids.tolist())
            cand = tiny_context.index.candidates(q, 10, None)
            d = np.linalg.norm(tiny_dataset.points[cand] - q, axis=1)
            kth = np.sort(d)[9]
            truth = set(cand[d <= kth + 1e-9].tolist())
            assert got <= truth
            if reference is None:
                reference = got

    def test_unknown_method(self, tiny_dataset):
        with pytest.raises(ValueError):
            build_caching_pipeline(tiny_dataset, method="HC-X")

    @pytest.mark.parametrize(
        "index_name", ["c2lsh", "e2lsh", "multiprobe", "vafile", "vaplus", "linear"]
    )
    def test_every_index_drives_the_pipeline(self, micro_dataset, index_name):
        pipeline = build_caching_pipeline(
            micro_dataset, method="HC-D", tau=5, cache_bytes=20_000,
            index_name=index_name, k=5,
        )
        res = pipeline.search(micro_dataset.query_log.test[0], 5)
        assert 0 < len(res.ids) <= 5

    def test_cva_bits_fit_budget(self, tiny_dataset, tiny_context):
        # 20 KB: 4 bits/dim (one word per 16-d point) holds all 2000 points.
        budget = 20_000
        cache = make_cache(tiny_context, "C-VA", cache_bytes=budget)
        assert cache.used_bytes <= budget
        assert cache.num_items == tiny_dataset.num_points
        assert cache.encoder.bits <= 4

    def test_lru_policy_supported(self, tiny_dataset, tiny_context):
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-D", tau=5, cache_bytes=30_000,
            policy=CachePolicy.LRU, context=tiny_context,
        )
        q = tiny_dataset.query_log.test[0]
        first = pipeline.search(q, 10)
        second = pipeline.search(q, 10)
        assert second.stats.cache_hits >= first.stats.cache_hits


class TestTreePipelines:
    @pytest.mark.parametrize("index_name", ["idistance", "vptree", "mtree"])
    @pytest.mark.parametrize("method", ["NO-CACHE", "EXACT", "HC-O"])
    def test_exactness(self, micro_dataset, index_name, method):
        pipeline = build_tree_pipeline(
            micro_dataset, index_name, method, tau=5, cache_bytes=30_000, k=5
        )
        for q in micro_dataset.query_log.test[:5]:
            res = pipeline.search(q, 5)
            assert_valid_knn(micro_dataset.points, q, 5, res.ids)

    def test_unknown_index(self, micro_dataset):
        with pytest.raises(ValueError):
            build_tree_pipeline(micro_dataset, "rtree-bogus", "EXACT")


class TestRunner:
    def test_experiment_end_to_end(self, tiny_dataset, tiny_context):
        res = Experiment(
            tiny_dataset, method="HC-O", tau=5, cache_bytes=30_000
        ).run(context=tiny_context)
        assert res.num_queries == len(tiny_dataset.query_log.test)
        assert 0 <= res.hit_ratio <= 1
        assert res.avg_io == res.avg_refine_io + res.avg_gen_io
        assert res.response_time_s > 0
        assert res.hit_times_prune <= 1

    def test_method_ordering_matches_paper(self, tiny_dataset, tiny_context):
        """HC-O <= HC-D <= ... <= NO-CACHE on refinement I/O (Table 4)."""
        io = {}
        for method in ("NO-CACHE", "EXACT", "HC-W", "HC-O"):
            r = Experiment(
                tiny_dataset, method=method, tau=5, cache_bytes=30_000
            ).run(context=tiny_context)
            io[method] = r.avg_refine_io
        assert io["HC-O"] <= io["HC-W"] + 1e-9
        assert io["HC-O"] < io["NO-CACHE"]
        assert io["EXACT"] < io["NO-CACHE"]

    def test_summarize_validation(self):
        with pytest.raises(ValueError):
            summarize([], "X", 1, 1, 1, 0.001)


class TestMeasureM1:
    def test_hco_minimizes_m1_among_histograms(self, tiny_context):
        """The optimal histogram should (approximately) minimize the exact
        M1 metric its construction approximates."""
        scores = {}
        for method in ("HC-W", "HC-D", "HC-V", "HC-O"):
            enc = tiny_context.encoder(method, 5)
            scores[method] = measure_m1(enc, tiny_context)
        assert scores["HC-O"] <= min(scores["HC-W"], scores["HC-V"]) + 1e-9
        assert scores["HC-O"] <= scores["HC-D"] * 1.2

    def test_identity_encoder_scores_low(self, tiny_context):
        enc = tiny_context.encoder("HC-O", 8)  # 256 buckets on 8-bit grid
        assert measure_m1(enc, tiny_context) <= measure_m1(
            tiny_context.encoder("HC-O", 2), tiny_context
        )


class TestReporting:
    def test_format_table(self):
        out = format_table(["a", "bb"], [[1, 2.5], ["x", 0.00001]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "t.csv", ["x"], [[1], [2]])
        assert path.read_text().splitlines() == ["x", "1", "2"]
