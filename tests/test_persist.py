"""Persistence roundtrips for histograms, encoders and datasets."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth, build_knn_optimal
from repro.core.domain import ValueDomain
from repro.core.encoder import (
    ExactEncoder,
    GlobalHistogramEncoder,
    IndividualHistogramEncoder,
)
from repro.data.datasets import Dataset
from repro.data.workload import generate_query_log
from repro.persist import (
    _FORMAT_VERSION,
    FormatVersionError,
    load_dataset_file,
    load_encoder,
    load_histogram,
    save_dataset,
    save_encoder,
    save_histogram,
)


@pytest.fixture()
def points():
    rng = np.random.default_rng(17)
    return np.rint(rng.uniform(0, 255, size=(150, 6)))


class TestHistogramRoundtrip:
    def test_with_frequencies(self, tmp_path, points):
        dom = ValueDomain.from_points(points)
        hist = build_equidepth(dom, 16)
        path = save_histogram(tmp_path / "h.npz", hist)
        loaded = load_histogram(path)
        assert np.array_equal(loaded.lowers, hist.lowers)
        assert np.array_equal(loaded.uppers, hist.uppers)
        assert np.array_equal(loaded.frequencies, hist.frequencies)

    def test_without_frequencies(self, tmp_path):
        from repro.core.histogram import Histogram

        hist = Histogram(np.array([0.0, 5.0]), np.array([4.0, 9.0]))
        loaded = load_histogram(save_histogram(tmp_path / "h.npz", hist))
        assert loaded.frequencies is None

    def test_missing_version(self, tmp_path):
        np.savez(tmp_path / "bad.npz", lowers=np.zeros(1), uppers=np.ones(1))
        with pytest.raises(FormatVersionError) as exc_info:
            load_histogram(tmp_path / "bad.npz")
        err = exc_info.value
        assert isinstance(err, ValueError)  # back-compat catch sites
        assert err.found is None
        assert err.expected == _FORMAT_VERSION
        assert "no format version" in str(err)
        assert "bad.npz" in str(err)

    def test_wrong_version(self, tmp_path):
        np.savez(
            tmp_path / "future.npz",
            version=np.array([99]),
            lowers=np.zeros(1),
            uppers=np.ones(1),
        )
        with pytest.raises(FormatVersionError) as exc_info:
            load_histogram(tmp_path / "future.npz")
        err = exc_info.value
        assert err.found == 99
        assert err.expected == _FORMAT_VERSION
        assert "found format version 99" in str(err)
        assert f"expected version {_FORMAT_VERSION}" in str(err)
        assert "future.npz" in str(err)


class TestEncoderRoundtrip:
    def test_global(self, tmp_path, points):
        dom = ValueDomain.from_points(points)
        enc = GlobalHistogramEncoder(build_knn_optimal(dom, dom.counts.astype(float), 16), 6)
        loaded = load_encoder(save_encoder(tmp_path / "e.npz", enc))
        assert isinstance(loaded, GlobalHistogramEncoder)
        assert np.array_equal(loaded.encode(points), enc.encode(points))

    def test_individual(self, tmp_path, points):
        hists = [
            build_equidepth(ValueDomain.from_column(points[:, j]), 8)
            for j in range(points.shape[1])
        ]
        enc = IndividualHistogramEncoder(hists)
        loaded = load_encoder(save_encoder(tmp_path / "e.npz", enc))
        assert isinstance(loaded, IndividualHistogramEncoder)
        codes = enc.encode(points)
        assert np.array_equal(loaded.encode(points), codes)
        lo_a, hi_a = enc.rectangles(codes)
        lo_b, hi_b = loaded.rectangles(codes)
        assert np.allclose(lo_a, lo_b) and np.allclose(hi_a, hi_b)

    def test_unsupported_encoder(self, tmp_path):
        with pytest.raises(TypeError):
            save_encoder(tmp_path / "e.npz", ExactEncoder(4, 8))


class TestDatasetRoundtrip:
    def test_with_query_log(self, tmp_path, points):
        log = generate_query_log(points, pool_size=10, workload_size=40,
                                 test_size=5, seed=0)
        ds = Dataset(name="unit", points=points, value_bits=8, query_log=log)
        loaded = load_dataset_file(save_dataset(tmp_path / "d.npz", ds))
        assert loaded.name == "unit"
        assert np.array_equal(loaded.points, ds.points)
        assert loaded.value_bits == 8
        assert np.array_equal(loaded.query_log.workload, log.workload)
        assert np.array_equal(loaded.query_log.test, log.test)

    def test_without_query_log(self, tmp_path, points):
        ds = Dataset(name="bare", points=points, value_bits=8)
        loaded = load_dataset_file(save_dataset(tmp_path / "d.npz", ds))
        assert loaded.query_log is None
