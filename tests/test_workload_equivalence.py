"""Static-workload equivalence: one training core, two entry points.

A :class:`WindowWorkload` holding exactly the offline workload ``WL``
must train — through :func:`train_cache_plan` — the *bit-identical*
artifacts the offline ``WorkloadContext`` path produces: same F', same
histogram bucket boundaries, same ``tau*`` pick, same cache contents.
This is the contract that lets the drift loop reuse the offline trainer
without a second implementation drifting out of sync.
"""

import numpy as np
import pytest

from repro.core.cache import CachePolicy
from repro.core.cost_model import optimal_tau_encoder
from repro.eval.methods import WorkloadContext
from repro.spec.build import make_method_cache
from repro.workload import TrainSpec, WindowWorkload, train_cache_plan

CACHE_BYTES = 24_000
TAU = 5


@pytest.fixture(scope="module")
def context(micro_dataset) -> WorkloadContext:
    return WorkloadContext.prepare(
        micro_dataset, index_name="linear", k=5, seed=0
    )


@pytest.fixture(scope="module")
def window(micro_dataset) -> WindowWorkload:
    """A live window that has seen exactly ``WL`` (and nothing else)."""
    wl = micro_dataset.query_log.workload
    model = WindowWorkload(capacity=len(wl))
    model.record_batch(wl)
    return model


def _train(context, window, method, tau):
    return train_cache_plan(
        window,
        TrainSpec(
            points=context.dataset.points,
            index=context.index,
            k=context.k,
            method=method,
            tau=tau,
            cache_bytes=CACHE_BYTES,
            value_bytes=context.dataset.value_bytes,
            domain=context.dataset.domain,
        ),
    )


def _cached_ids(cache) -> np.ndarray:
    n = len(cache._slot_of)
    return np.flatnonzero(cache.contains(np.arange(n)))


class TestStaticEquivalence:
    def test_derivation_matches_offline_scan(self, context, window):
        plan = _train(context, window, "HC-O", TAU)
        deriv = plan.derivation
        np.testing.assert_array_equal(deriv.distinct, context.distinct_queries)
        np.testing.assert_array_equal(deriv.weights, context.query_weights)
        np.testing.assert_array_equal(deriv.frequencies, context.frequencies)
        assert deriv.d_max == context.d_max
        assert deriv.avg_candidates == context.avg_candidates
        np.testing.assert_array_equal(
            deriv.qr.point_ids, context.qr.point_ids
        )

    def test_fprime_is_bit_identical(self, context, window):
        plan = _train(context, window, "HC-O", TAU)
        np.testing.assert_array_equal(plan.fprime, context.fprime)

    @pytest.mark.parametrize("method,kind", [
        ("HC-W", "equiwidth"),
        ("HC-D", "equidepth"),
        ("HC-V", "voptimal"),
        ("HC-O", "knn-optimal"),
    ])
    def test_histogram_boundaries_are_bit_identical(
        self, context, window, method, kind
    ):
        plan = _train(context, window, method, TAU)
        offline = context.histogram(kind, TAU)
        np.testing.assert_array_equal(plan.histogram.lowers, offline.lowers)
        np.testing.assert_array_equal(plan.histogram.uppers, offline.uppers)

    def test_tau_star_matches_offline_tuner(self, context, window):
        plan = _train(context, window, "HC-O", None)
        offline_tau = optimal_tau_encoder(
            context.cost_model(),
            CACHE_BYTES,
            lambda t: context.encoder("HC-O", t),
            context.qr_points,
            tau_range=(2, 12),
        )
        assert plan.tau == offline_tau

    @pytest.mark.parametrize("method", ["HC-W", "HC-O"])
    def test_cache_contents_are_bit_identical(self, context, window, method):
        plan = _train(context, window, method, TAU)
        offline = make_method_cache(
            context, method, tau=TAU, cache_bytes=CACHE_BYTES
        )
        online_ids = _cached_ids(plan.cache)
        offline_ids = _cached_ids(offline)
        np.testing.assert_array_equal(online_ids, offline_ids)
        # Same ids AND same stored codes, word for word.
        online_codes = plan.cache._store.get_rows(
            plan.cache._slot_of[online_ids]
        )
        offline_codes = offline._store.get_rows(offline._slot_of[offline_ids])
        np.testing.assert_array_equal(online_codes, offline_codes)

    def test_predictions_match_offline_cost_model(self, context, window):
        plan = _train(context, window, "HC-O", TAU)
        model = context.cost_model()
        n_items = model.items_for(
            CACHE_BYTES, plan.encoder.bits, plan.encoder.n_fields
        )
        assert plan.predicted_hit_ratio == model.hit_ratio(n_items)

    def test_lru_policy_passes_through(self, context, window):
        plan = train_cache_plan(
            window,
            TrainSpec(
                points=context.dataset.points,
                index=context.index,
                k=context.k,
                method="HC-W",
                tau=TAU,
                cache_bytes=CACHE_BYTES,
                policy=CachePolicy.LRU,
                domain=context.dataset.domain,
            ),
        )
        assert plan.cache.policy is CachePolicy.LRU
        assert plan.cache.num_items == 0  # LRU fills online, not at build


class TestTrainSpecValidation:
    def test_empty_model_raises(self, context):
        with pytest.raises(ValueError, match="no queries"):
            _train(context, WindowWorkload(capacity=4), "HC-O", TAU)

    def test_missing_index_raises(self, context, window):
        with pytest.raises(ValueError, match="index"):
            train_cache_plan(
                window, TrainSpec(points=context.dataset.points)
            )

    def test_missing_model_raises(self, context):
        with pytest.raises(ValueError, match="model or a derivation"):
            train_cache_plan(
                None,
                TrainSpec(points=context.dataset.points, index=context.index),
            )

    def test_unknown_method_needs_factory(self, context, window):
        with pytest.raises(ValueError, match="encoder_factory"):
            _train(context, window, "iHC-O", TAU)

    def test_invalid_k_and_tau(self, context):
        with pytest.raises(ValueError):
            TrainSpec(points=context.dataset.points, k=0)
        with pytest.raises(ValueError):
            TrainSpec(points=context.dataset.points, tau=0)

    def test_raw_array_model_is_accepted(self, context, window):
        """A plain (W, d) array trains identically to a window over it."""
        wl = context.dataset.query_log.workload
        from_array = train_cache_plan(
            wl,
            TrainSpec(
                points=context.dataset.points,
                index=context.index,
                k=context.k,
                method="HC-O",
                tau=TAU,
                cache_bytes=CACHE_BYTES,
                domain=context.dataset.domain,
            ),
        )
        from_window = _train(context, window, "HC-O", TAU)
        np.testing.assert_array_equal(
            from_array.fprime, from_window.fprime
        )
        np.testing.assert_array_equal(
            _cached_ids(from_array.cache), _cached_ids(from_window.cache)
        )
