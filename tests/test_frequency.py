"""QR multiset and the workload frequency arrays F' / F'_j."""

import numpy as np
import pytest

from repro.core.domain import ValueDomain
from repro.core.frequency import (
    QRSet,
    compute_qr,
    fprime_global,
    fprime_per_dimension,
)


@pytest.fixture(scope="module")
def small_world():
    rng = np.random.default_rng(9)
    points = np.rint(rng.uniform(0, 63, size=(120, 4)))
    queries = np.vstack([points[3], points[3], points[50]])  # 3 repeated
    return points, queries


class TestComputeQR:
    def test_shapes_and_weights(self, small_world):
        points, queries = small_world
        qr = compute_qr(points, queries, k=3)
        assert qr.point_ids.shape == (2, 3)  # 2 distinct queries
        assert sorted(qr.weights.tolist()) == [1, 2]

    def test_members_are_true_nearest(self, small_world):
        points, queries = small_world
        qr = compute_qr(points, queries, k=3)
        uniq = np.unique(queries, axis=0)
        for q, row in zip(uniq, qr.point_ids):
            d = np.linalg.norm(points - q, axis=1)
            kth = np.sort(d)[2]
            assert np.all(d[row] <= kth + 1e-9)

    def test_rows_sorted_by_distance(self, small_world):
        points, queries = small_world
        qr = compute_qr(points, queries, k=5)
        uniq = np.unique(queries, axis=0)
        for q, row in zip(uniq, qr.point_ids):
            d = np.linalg.norm(points[row] - q, axis=1)
            assert np.all(np.diff(d) >= -1e-9)

    def test_candidate_sets_restrict_choice(self, small_world):
        points, queries = small_world
        uniq = np.unique(queries, axis=0)
        cand_sets = [np.array([1, 2, 3]), np.array([4, 5])]
        qr = compute_qr(points, queries, k=2, candidate_sets=cand_sets)
        for row, cands in zip(qr.point_ids, cand_sets):
            members = row[row >= 0]
            assert set(members.tolist()) <= set(cands.tolist())

    def test_short_candidate_sets_pad_with_minus_one(self, small_world):
        points, queries = small_world
        cand_sets = [np.array([1]), np.empty(0, dtype=int)]
        qr = compute_qr(points, queries, k=3, candidate_sets=cand_sets)
        assert (qr.point_ids[0] == -1).sum() == 2
        assert (qr.point_ids[1] == -1).all()

    def test_wrong_candidate_set_count(self, small_world):
        points, queries = small_world
        with pytest.raises(ValueError):
            compute_qr(points, queries, k=2, candidate_sets=[np.array([0])])

    def test_invalid_k(self, small_world):
        points, queries = small_world
        with pytest.raises(ValueError):
            compute_qr(points, queries, k=0)


class TestFPrime:
    def test_total_mass(self, small_world):
        points, queries = small_world
        dom = ValueDomain.from_points(points)
        qr = compute_qr(points, queries, k=3)
        fprime = fprime_global(dom, points, qr)
        # 3 submissions x 3 members x 4 coordinates.
        assert fprime.sum() == 3 * 3 * 4

    def test_weights_multiply_contributions(self, small_world):
        points, _ = small_world
        dom = ValueDomain.from_points(points)
        base = QRSet(np.array([[0, 1]]), np.array([1]))
        double = QRSet(np.array([[0, 1]]), np.array([2]))
        f1 = fprime_global(dom, points, base)
        f2 = fprime_global(dom, points, double)
        assert np.array_equal(f2, 2 * f1)

    def test_per_dimension_decomposition_sums_to_global(self, small_world):
        """Section 3.6.2: F' = sum_j F'_j when domains coincide."""
        points, queries = small_world
        qr = compute_qr(points, queries, k=3)
        dom = ValueDomain.from_points(points)
        dims = [ValueDomain.from_column(points[:, j]) for j in range(4)]
        f_global = fprime_global(dom, points, qr)
        f_dims = fprime_per_dimension(dims, points, qr)
        total = np.zeros(dom.size)
        for j, fj in enumerate(f_dims):
            idx = dom.index_of(dims[j].values)
            total[idx] += fj
        assert np.array_equal(total.astype(int), f_global)

    def test_per_dimension_requires_matching_domains(self, small_world):
        points, queries = small_world
        qr = compute_qr(points, queries, k=2)
        with pytest.raises(ValueError):
            fprime_per_dimension([ValueDomain.from_column(points[:, 0])], points, qr)

    def test_empty_rows_are_skipped(self, small_world):
        points, _ = small_world
        dom = ValueDomain.from_points(points)
        qr = QRSet(np.array([[-1, -1]]), np.array([5]))
        assert fprime_global(dom, points, qr).sum() == 0
