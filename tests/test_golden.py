"""Golden determinism tests: seeded runs produce byte-identical outcomes.

These freeze observable behavior of the full stack on the tiny dataset.
If a change breaks one of these on purpose (an algorithmic improvement),
update the expected values alongside the change — the point is that such
changes never happen *silently*.
"""

import numpy as np
import pytest

from repro.core.builders import build_knn_optimal
from repro.data.datasets import load_dataset
from repro.data.synthetic import clustered_dataset
from repro.data.workload import generate_query_log
from repro.eval.methods import WorkloadContext, build_caching_pipeline


class TestDataDeterminism:
    def test_dataset_fingerprint(self):
        ds = load_dataset("tiny", seed=0)
        assert ds.num_points == 2000
        assert float(ds.points.sum()) == pytest.approx(2926365.0)
        assert ds.domain.size == 256

    def test_dataset_differs_by_seed(self):
        a = load_dataset("tiny", seed=0)
        b = load_dataset("tiny", seed=1)
        assert not np.array_equal(a.points, b.points)

    def test_workload_fingerprint(self):
        ds = load_dataset("tiny", seed=0)
        log = ds.query_log
        assert log.workload.shape == (400, 16)
        assert log.test.shape == (20, 16)
        pop = log.popularity()
        assert int(pop[0]) == 122  # most popular query submissions

    def test_synthetic_reproducible_across_calls(self):
        a = clustered_dataset(300, 8, seed=5)
        b = clustered_dataset(300, 8, seed=5)
        assert np.array_equal(a, b)


class TestPipelineDeterminism:
    @pytest.fixture(scope="class")
    def ctx(self):
        ds = load_dataset("tiny", seed=0)
        return ds, WorkloadContext.prepare(ds, k=10, seed=0)

    def test_candidate_statistics(self, ctx):
        ds, context = ctx
        assert context.avg_candidates == pytest.approx(161.695)
        assert int(context.frequencies.sum()) == 64678

    def test_histogram_fingerprint(self, ctx):
        ds, context = ctx
        hist = build_knn_optimal(ds.domain, context.fprime, 32)
        assert hist.num_buckets == 32
        assert float(hist.widths.sum()) == pytest.approx(
            float(hist.uppers[-1] - hist.lowers[0])
            - float(np.sum(hist.lowers[1:] - hist.uppers[:-1]))
        )

    def test_search_is_deterministic_across_pipelines(self, ctx):
        ds, context = ctx
        a = build_caching_pipeline(ds, method="HC-O", tau=5,
                                   cache_bytes=30_000, context=context)
        b = build_caching_pipeline(ds, method="HC-O", tau=5,
                                   cache_bytes=30_000, context=context)
        for q in ds.query_log.test[:5]:
            ra, rb = a.search(q, 10), b.search(q, 10)
            assert np.array_equal(ra.ids, rb.ids)
            assert ra.stats == rb.stats

    def test_same_seed_same_results_after_rebuild(self):
        """Everything rebuilt from scratch with the same seed agrees."""
        def run():
            pts = clustered_dataset(500, 10, seed=3)
            log = generate_query_log(pts, pool_size=30, workload_size=150,
                                     test_size=8, seed=4)
            from repro.data.datasets import Dataset

            ds = Dataset(name="g", points=pts, value_bits=12, query_log=log)
            ctx = WorkloadContext.prepare(ds, k=5, seed=0)
            pipe = build_caching_pipeline(ds, method="HC-O", tau=5,
                                          cache_bytes=20_000, context=ctx)
            return [tuple(pipe.search(q, 5).ids.tolist()) for q in log.test]

        assert run() == run()
