"""Public API surface: lazy exports and package metadata."""

import pytest

import repro


class TestLazyExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            if name.startswith("__"):
                continue
            assert getattr(repro, name) is not None

    def test_dir_lists_exports(self):
        listing = dir(repro)
        assert "CachedKNNSearch" in listing
        assert "load_dataset" in listing

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.not_a_real_symbol

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_exports_point_to_real_classes(self):
        from repro.core.search import CachedKNNSearch

        assert repro.CachedKNNSearch is CachedKNNSearch
