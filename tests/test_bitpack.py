"""Bit-packing: exact roundtrips for every geometry, capacity accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitpack import BitPackedMatrix


class TestGeometry:
    def test_row_bytes_word_rounding(self):
        bp = BitPackedMatrix(4, 150, 10)  # 1500 bits -> 24 words
        assert bp.words_per_row == 24
        assert bp.row_bytes == 192
        assert bp.row_bits == 1500

    def test_single_field(self):
        bp = BitPackedMatrix(2, 1, 12)
        assert bp.words_per_row == 1

    def test_nbytes(self):
        bp = BitPackedMatrix(10, 8, 8)
        assert bp.nbytes == 10 * bp.words_per_row * 8

    @pytest.mark.parametrize("bits", [0, 64, -1])
    def test_rejects_bad_bits(self, bits):
        with pytest.raises(ValueError):
            BitPackedMatrix(1, 4, bits)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            BitPackedMatrix(-1, 4, 8)


class TestRoundtrip:
    def test_straddling_words(self):
        rng = np.random.default_rng(0)
        bp = BitPackedMatrix(8, 13, 11)  # 143 bits: codes straddle words
        codes = rng.integers(0, 2**11, size=(8, 13))
        bp.set_rows(np.arange(8), codes)
        assert np.array_equal(bp.get_rows(np.arange(8)), codes)

    def test_max_values(self):
        bp = BitPackedMatrix(1, 5, 7)
        codes = np.full((1, 5), 127)
        bp.set_rows(np.array([0]), codes)
        assert np.array_equal(bp.get_rows(np.array([0])), codes)

    def test_overwrite_slot(self):
        bp = BitPackedMatrix(2, 3, 4)
        bp.set_rows(np.array([1]), np.array([[1, 2, 3]]))
        bp.set_rows(np.array([1]), np.array([[4, 5, 6]]))
        assert bp.get_rows(np.array([1])).tolist() == [[4, 5, 6]]

    def test_rejects_code_overflow(self):
        bp = BitPackedMatrix(1, 2, 3)
        with pytest.raises(ValueError):
            bp.set_rows(np.array([0]), np.array([[8, 0]]))

    def test_rejects_negative_codes(self):
        bp = BitPackedMatrix(1, 2, 3)
        with pytest.raises(ValueError):
            bp.set_rows(np.array([0]), np.array([[-1, 0]]))

    def test_rejects_bad_slot(self):
        bp = BitPackedMatrix(2, 2, 3)
        with pytest.raises(IndexError):
            bp.set_rows(np.array([5]), np.array([[0, 0]]))
        with pytest.raises(IndexError):
            bp.get_rows(np.array([-1]))

    def test_rejects_wrong_field_count(self):
        bp = BitPackedMatrix(1, 3, 4)
        with pytest.raises(ValueError):
            bp.set_rows(np.array([0]), np.array([[1, 2]]))

    @given(
        n_fields=st.integers(1, 40),
        bits=st.integers(1, 63),
        seed=st.integers(0, 2**16),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_roundtrip(self, n_fields, bits, seed):
        rng = np.random.default_rng(seed)
        rows = int(rng.integers(1, 6))
        bp = BitPackedMatrix(rows, n_fields, bits)
        high = min(2**bits, 2**62)
        codes = rng.integers(0, high, size=(rows, n_fields))
        bp.set_rows(np.arange(rows), codes)
        assert np.array_equal(bp.get_rows(np.arange(rows)), codes)

    def test_rows_independent(self):
        rng = np.random.default_rng(1)
        bp = BitPackedMatrix(30, 9, 6)
        codes = rng.integers(0, 64, size=(30, 9))
        bp.set_rows(np.arange(30), codes)
        bp.set_rows(np.array([7]), np.zeros((1, 9), dtype=int))
        codes[7] = 0
        assert np.array_equal(bp.get_rows(np.arange(30)), codes)
