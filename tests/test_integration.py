"""Cross-module integration: the paper's worked examples and full flows."""

import numpy as np
import pytest

from repro.core.bounds import rectangle_bounds
from repro.core.builders import build_knn_optimal
from repro.core.cache import ApproximateCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.histogram import Histogram
from repro.core.multistep import multistep_knn
from repro.core.reduction import reduce_candidates
from repro.core.search import CachedKNNSearch
from repro.data.datasets import Dataset
from repro.data.workload import generate_query_log
from repro.eval.methods import WorkloadContext, build_caching_pipeline
from repro.index.linear_scan import LinearScanIndex
from repro.storage.pointfile import PointFile
from tests.conftest import assert_valid_knn


class TestPaperSection3Example:
    """The running example of Figure 5 / Table 1 (d=2, tau=2, k=1)."""

    POINTS = np.array(
        [[2, 20], [10, 16], [19, 30], [26, 4], [11, 18], [3, 24], [0, 0]],
        dtype=float,
    )  # p1..p6 at ids 0..5 (plus a filler id 6), q=(9,11)
    QUERY = np.array([9.0, 11.0])

    def _histogram(self):
        # The example's equi-width histogram: [0..7], [8..15], [16..23], [24..31].
        return Histogram(
            lowers=np.array([0.0, 8.0, 16.0, 24.0]),
            uppers=np.array([7.0, 15.0, 23.0, 31.0]),
        )

    def test_figure5_codes(self):
        hist = self._histogram()
        enc = GlobalHistogramEncoder(hist, 2)
        codes = enc.encode(self.POINTS[:4])
        assert codes.tolist() == [[0, 2], [1, 2], [2, 3], [3, 0]]

    def test_table1_bounds(self):
        hist = self._histogram()
        enc = GlobalHistogramEncoder(hist, 2)
        codes = enc.encode(self.POINTS[:4])
        lo, hi = enc.rectangles(codes)
        lb, ub = rectangle_bounds(self.QUERY, lo, hi)
        assert lb[0] == pytest.approx(5.39, abs=0.01)
        assert ub[0] == pytest.approx(15.0, abs=0.01)
        assert lb[1] == pytest.approx(5.00, abs=0.01)
        assert ub[1] == pytest.approx(13.42, abs=0.01)
        assert lb[2] == pytest.approx(14.76, abs=0.01)
        assert lb[3] == pytest.approx(15.52, abs=0.01)

    def test_example_prunes_p3_p4(self):
        hist = self._histogram()
        enc = GlobalHistogramEncoder(hist, 2)
        ids = np.array([0, 1, 2, 3])
        codes = enc.encode(self.POINTS[ids])
        lo, hi = enc.rectangles(codes)
        lb, ub = rectangle_bounds(self.QUERY, lo, hi)
        out = reduce_candidates(ids, np.ones(4, bool), lb, ub, k=1)
        assert sorted(out.pruned_ids.tolist()) == [2, 3]
        assert sorted(out.remaining_ids.tolist()) == [0, 1]

    def test_example_total_disk_accesses(self):
        """The paper counts at most 4 accesses: p5, p6 (misses) + p1, p2."""
        points = self.POINTS
        pf = PointFile(points, value_bytes=1024)  # 1 point per page
        hist = self._histogram()
        enc = GlobalHistogramEncoder(hist, 2)
        cache = ApproximateCache(enc, 1 << 10, len(points))
        cache.populate(np.array([0, 1, 2, 3]), points[:4])  # p1..p4 cached
        index = LinearScanIndex(6)  # C(q) = p1..p6
        searcher = CachedKNNSearch(index, pf, cache)
        res = searcher.search(self.QUERY, 1)
        assert res.stats.refined_fetches <= 4
        assert res.ids.tolist() == [1]  # p2 = (10, 16), dist 5.10


class TestFigure6Histograms:
    """Figure 6: 1-d data {3,4,10,12,22,24,30,31}, q=17, k=2, B=4."""

    DATA = np.array([3.0, 4.0, 10.0, 12.0, 22.0, 24.0, 30.0, 31.0])

    def test_optimal_histogram_yields_zero_refinement(self):
        dom = ValueDomain.from_column(self.DATA)
        fprime = np.zeros(dom.size)
        fprime[dom.index_of([12.0, 22.0])] = 1  # the 2NN of q=17
        hist = build_knn_optimal(dom, fprime, 4)
        enc = GlobalHistogramEncoder(hist, 1)
        pts = self.DATA.reshape(-1, 1)
        codes = enc.encode(pts)
        lo, hi = enc.rectangles(codes)
        lb, ub = rectangle_bounds(np.array([17.0]), lo, hi)
        out = reduce_candidates(
            np.arange(8), np.ones(8, bool), lb, ub, k=2
        )
        # The paper's ideal outcome: zero remaining candidates.
        assert out.c_refine == 0
        assert set(out.confirmed_ids.tolist()) == {3, 4}  # 12 and 22


class TestFullPipelineOnFreshData:
    def test_end_to_end_lsh_cache_refinement(self):
        rng = np.random.default_rng(77)
        centers = rng.uniform(0, 250, size=(5, 20))
        pts = np.rint(
            np.clip(
                np.concatenate(
                    [c + rng.normal(scale=8, size=(160, 20)) for c in centers]
                ),
                0,
                255,
            )
        )
        log = generate_query_log(pts, pool_size=60, workload_size=500, test_size=15, seed=1)
        ds = Dataset(name="fresh", points=pts, value_bits=8, query_log=log)
        ctx = WorkloadContext.prepare(ds, index_name="c2lsh", k=8, seed=2)
        pipeline = build_caching_pipeline(
            ds, method="HC-O", tau=6, cache_bytes=60_000, k=8, context=ctx
        )
        baseline = build_caching_pipeline(
            ds, method="NO-CACHE", k=8, context=ctx
        )
        saved, spent = 0, 0
        for q in log.test:
            res = pipeline.search(q, 8)
            ref = baseline.search(q, 8)
            assert set(res.ids.tolist()) == set(ref.ids.tolist())
            saved += ref.stats.refine_page_reads
            spent += res.stats.refine_page_reads
        assert spent < saved  # the cache must save refinement I/O overall

    def test_multistep_and_reduction_compose(self):
        """Manually drive phases 2+3 and compare against brute force."""
        rng = np.random.default_rng(3)
        pts = np.rint(rng.uniform(0, 127, size=(250, 10)))
        dom = ValueDomain.from_points(pts)
        fprime = dom.counts.astype(float)
        enc = GlobalHistogramEncoder(build_knn_optimal(dom, fprime, 16), 10)
        pf = PointFile(pts)
        q = pts[11] + 0.5
        ids = np.arange(250)
        codes = enc.encode(pts)
        lo, hi = enc.rectangles(codes)
        lb, ub = rectangle_bounds(q, lo, hi)
        out = reduce_candidates(ids, np.ones(250, bool), lb, ub, 6)
        res = multistep_knn(
            q, out.remaining_ids, out.remaining_lb, 6, pf.fetch,
            out.confirmed_ids, out.confirmed_ub,
        )
        assert_valid_knn(pts, q, 6, res.ids)
