"""Differential harness: bound kernels are invisible to search results.

The guarantee matrix, per (index family x cache configuration) cell:
switching ``ApproximateCache``/``LeafNodeCache`` between the ``decode``,
``numpy`` and (when a C compiler is present) ``native`` kernels changes
**nothing observable**:

* **bounds** — ``lookup`` and ``lookup_batch`` return byte-identical
  ``(hits, lb, ub)`` arrays;
* **results** — ids, distances, ``exact_mask`` and per-query
  ``QueryStats`` (candidates / hits / pruned / confirmed / c_refine /
  I/O counts) from a full ``QueryEngine.search_many`` run are identical;
* **telemetry** — the cache's cumulative counters agree, because every
  hit/prune decision fell the same way.

Each cell rebuilds its engine from scratch per kernel (LRU caches
mutate during search, so state must not leak between kernel runs).
Every randomized input derives from ``SEED``; assertion messages carry
the cell and kernel names.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.builders import build_equidepth, build_equiwidth
from repro.core.cache import ApproximateCache, CachePolicy, LeafNodeCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder, IndividualHistogramEncoder
from repro.core.kernels import native_available
from repro.core.multidim import RTreeBucketEncoder
from repro.core.pq import PQEncoder
from repro.engine.engine import QueryEngine
from repro.index.idistance import IDistanceIndex
from repro.index.linear_scan import LinearScanIndex
from repro.index.vafile import VAFileIndex
from repro.lsh.c2lsh import C2LSHIndex, C2LSHParams, calibrate_base_radius
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

SEED = 20260808
N_POINTS = 240
DIM = 6
K = 5
CACHE_BYTES = 1 << 11

NATIVE_OK, NATIVE_REASON = native_available()
KERNELS = ("decode", "numpy") + (("native",) if NATIVE_OK else ())

STAT_FIELDS = (
    "num_candidates",
    "cache_hits",
    "pruned",
    "confirmed",
    "c_refine",
    "refined_fetches",
    "refine_page_reads",
    "gen_page_reads",
)
TELEMETRY_FIELDS = (
    "lookups",
    "hits",
    "lookup_calls",
    "admissions",
    "updates",
    "evictions",
    "rejections",
)


@dataclass(frozen=True)
class Cell:
    """One (index family x encoder x policy) entry of the matrix."""

    name: str
    index_name: str  # linear | c2lsh | vafile | idistance-leaf
    encoder: str  # hc | ihc | mhc | pq
    policy: str = "hff"  # hff | lru

    def expected_kernel(self, requested: str) -> str:
        """The kernel the cache should resolve for this encoder
        ("decode" for encoders without bucket structure)."""
        if self.encoder == "pq" and requested in ("numpy", "native"):
            return "decode"
        if (
            self.encoder == "mhc"
            and requested == "native"
            and self.index_name != "idistance-leaf"
        ):
            # Bucket-rectangle encoders delegate the packed path to the
            # table-gather kernel, but the selected kernel IS native.
            return "native"
        return requested


#: >= 8 index x cache cells (acceptance criterion).
CELLS = (
    Cell("linear~hc-hff", "linear", "hc"),
    Cell("linear~ihc-hff", "linear", "ihc"),
    Cell("linear~mhc-hff", "linear", "mhc"),
    Cell("linear~pq-hff", "linear", "pq"),
    Cell("linear~hc-lru", "linear", "hc", policy="lru"),
    Cell("c2lsh~hc-hff", "c2lsh", "hc"),
    Cell("c2lsh~ihc-hff", "c2lsh", "ihc"),
    Cell("vafile~hc-hff", "vafile", "hc"),
    Cell("vafile~mhc-hff", "vafile", "mhc"),
    Cell("idistance~leaf-hc", "idistance-leaf", "hc"),
)


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    centers = rng.uniform(10, 90, size=(3, DIM))
    points = np.rint(
        np.clip(
            np.concatenate(
                [c + rng.normal(scale=8, size=(N_POINTS // 3, DIM)) for c in centers]
            ),
            0,
            100,
        )
    )
    queries = rng.uniform(0, 100, size=(7, DIM))
    frequencies = rng.integers(0, 9, size=len(points)).astype(np.int64)
    return {"points": points, "queries": queries, "frequencies": frequencies}


def _build_encoder(kind: str, points: np.ndarray):
    dom = ValueDomain.from_points(points)
    if kind == "hc":
        return GlobalHistogramEncoder(build_equidepth(dom, 16), DIM)
    if kind == "ihc":
        return IndividualHistogramEncoder(
            [
                build_equiwidth(ValueDomain.from_column(points[:, j]), 8)
                for j in range(DIM)
            ]
        )
    if kind == "mhc":
        return RTreeBucketEncoder(points, tau=5)
    if kind == "pq":
        return PQEncoder(points, n_subspaces=3, bits=4, seed=1)
    raise ValueError(kind)


def _build_cache(cell: Cell, data, kernel: str):
    points = data["points"]
    encoder = _build_encoder(cell.encoder, points)
    policy = CachePolicy.LRU if cell.policy == "lru" else CachePolicy.HFF
    cache = ApproximateCache(
        encoder, CACHE_BYTES, len(points), policy, kernel=kernel
    )
    if policy is CachePolicy.HFF:
        cache.populate_hff(data["frequencies"], points)
    return cache


def _build_engine(cell: Cell, data, kernel: str):
    """A fresh engine + cache for one kernel (no state shared)."""
    points = data["points"]
    if cell.index_name == "idistance-leaf":
        index = IDistanceIndex(points, seed=0, value_bytes=4)
        encoder = _build_encoder(cell.encoder, points)
        cache = LeafNodeCache(encoder, CACHE_BYTES, kernel=kernel)
        freqs = index.leaf_access_frequencies(data["queries"], K)
        cache.populate_by_frequency(freqs, index.leaf_contents)
        return QueryEngine.for_tree(index, cache), cache
    if cell.index_name == "linear":
        index = LinearScanIndex(len(points))
    elif cell.index_name == "c2lsh":
        index = C2LSHIndex(
            points,
            params=C2LSHParams(beta=1.0, n_hashes=16),
            seed=0,
            base_radius=calibrate_base_radius(points, seed=0),
        )
    elif cell.index_name == "vafile":
        index = VAFileIndex(points, bits=5)
    else:
        raise ValueError(cell.index_name)
    cache = _build_cache(cell, data, kernel)
    point_file = PointFile(points, disk=SimulatedDisk(DiskConfig()))
    return QueryEngine.for_index(index, point_file, cache), cache


# ----------------------------------------------------------------------
# Direct bound bit-identity (cache lookup / lookup_batch)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cell", CELLS, ids=lambda c: c.name)
def test_lookup_bounds_bit_identical(cell: Cell, data) -> None:
    if cell.index_name == "idistance-leaf":
        pytest.skip("leaf cache covered by test_leaf_lookup_bit_identical")
    rng = np.random.default_rng(SEED + 1)
    ids = rng.permutation(len(data["points"]))[:60]
    queries = data["queries"]
    baseline = None
    for kernel in KERNELS:
        cache = _build_cache(cell, data, kernel)
        hits_b, lb_b, ub_b = cache.lookup_batch(queries, ids)
        hits_s, lb_s, ub_s = cache.lookup(queries[0], ids)
        where = f"{cell.name} kernel={kernel} seed={SEED}"
        # Single-query lookup agrees with row 0 of the batch.
        assert np.array_equal(hits_b, hits_s), where
        assert np.array_equal(lb_b[0], lb_s), where
        assert np.array_equal(ub_b[0], ub_s), where
        if baseline is None:
            baseline = (hits_b, lb_b, ub_b)
        else:
            assert np.array_equal(baseline[0], hits_b), where
            assert np.array_equal(baseline[1], lb_b), f"{where}: lb differs"
            assert np.array_equal(baseline[2], ub_b), f"{where}: ub differs"


def test_leaf_lookup_bit_identical(data) -> None:
    cell = CELLS[-1]
    baseline = None
    for kernel in KERNELS:
        _, cache = _build_engine(cell, data, kernel)
        assert cache.num_leaves > 0
        leaf_ids = sorted(cache._entries)
        per_leaf = []
        for leaf in leaf_ids:
            ids, lb, ub = cache.lookup(data["queries"][0], leaf)
            per_leaf.append((ids, lb, ub))
        if baseline is None:
            baseline = per_leaf
        else:
            for (bi, bl, bu), (gi, gl, gu) in zip(baseline, per_leaf):
                assert np.array_equal(bi, gi), kernel
                assert np.array_equal(bl, gl), f"leaf lb differs ({kernel})"
                assert np.array_equal(bu, gu), f"leaf ub differs ({kernel})"


# ----------------------------------------------------------------------
# End-to-end: answers, stats and telemetry are kernel-invariant
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cell", CELLS, ids=lambda c: c.name)
def test_search_results_kernel_invariant(cell: Cell, data) -> None:
    runs = {}
    for kernel in KERNELS:
        engine, cache = _build_engine(cell, data, kernel)
        assert cache.kernel_name == cell.expected_kernel(kernel), (
            f"{cell.name}: requested {kernel}, "
            f"cache resolved {cache.kernel_name}"
        )
        results = engine.search_many(data["queries"], K)
        telemetry = tuple(
            getattr(cache.telemetry, f) for f in TELEMETRY_FIELDS
        )
        runs[kernel] = (results, telemetry)
    base_results, base_telemetry = runs["decode"]
    for kernel in KERNELS[1:]:
        got_results, got_telemetry = runs[kernel]
        for qi, (b, r) in enumerate(zip(base_results, got_results)):
            where = f"{cell.name} kernel={kernel} query={qi} seed={SEED}"
            assert np.array_equal(b.ids, r.ids), (
                f"{where}: ids {b.ids} != {r.ids}"
            )
            assert np.array_equal(b.distances, r.distances), (
                f"{where}: distances differ"
            )
            assert np.array_equal(b.exact_mask, r.exact_mask), (
                f"{where}: exact_mask differs"
            )
            for name in STAT_FIELDS:
                assert getattr(b.stats, name) == getattr(r.stats, name), (
                    f"{where}: stats.{name} "
                    f"{getattr(b.stats, name)} != {getattr(r.stats, name)}"
                )
        assert base_telemetry == got_telemetry, (
            f"{cell.name} kernel={kernel}: telemetry "
            f"{dict(zip(TELEMETRY_FIELDS, got_telemetry))} != "
            f"{dict(zip(TELEMETRY_FIELDS, base_telemetry))}"
        )


def test_set_kernel_switches_in_place(data) -> None:
    """Re-selecting the kernel on a live cache keeps bounds identical."""
    cell = CELLS[0]
    cache = _build_cache(cell, data, "decode")
    ids = np.arange(50)
    want = cache.lookup_batch(data["queries"], ids)
    for kernel in KERNELS[1:]:
        cache.set_kernel(kernel)
        assert cache.kernel_name == kernel
        got = cache.lookup_batch(data["queries"], ids)
        assert np.array_equal(want[1], got[1]), kernel
        assert np.array_equal(want[2], got[2]), kernel


def test_env_default_used_by_unconfigured_cache(data, monkeypatch) -> None:
    """A cache built without an explicit kernel honors REPRO_KERNEL."""
    monkeypatch.setenv("REPRO_KERNEL", "decode")
    cache = _build_cache(CELLS[0], data, None)
    assert cache.kernel_name == "decode"
    monkeypatch.setenv("REPRO_KERNEL", "numpy")
    cache.set_kernel(None)  # re-resolve under the new environment
    assert cache.kernel_name == "numpy"


def test_pickle_round_trip_preserves_choice(data) -> None:
    """Kernel objects never pickle; the choice string survives."""
    import pickle

    cache = _build_cache(CELLS[0], data, "numpy")
    cache.kernel  # force resolution so _kernel_obj exists
    clone = pickle.loads(pickle.dumps(cache))
    assert clone.kernel_name == "numpy"
    ids = np.arange(40)
    want = cache.lookup_batch(data["queries"], ids)
    got = clone.lookup_batch(data["queries"], ids)
    assert np.array_equal(want[1], got[1])
    assert np.array_equal(want[2], got[2])
