"""Histogram metrics: MSSE, Upsilon, M3, and the Lemma-2 identity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builders import build_equidepth, build_equiwidth
from repro.core.domain import ValueDomain
from repro.core.histogram import Histogram
from repro.core.metrics import m3, mean_error_vector_norm_sq, msse, upsilon


def _domain(values, counts=None):
    values = np.asarray(values, dtype=np.float64)
    if counts is None:
        counts = np.ones(len(values), dtype=np.int64)
    return ValueDomain(values, np.asarray(counts))


class TestUpsilon:
    def test_formula(self):
        assert upsilon(3.0, 4.0) == 48.0

    def test_vectorized(self):
        out = upsilon(np.array([1.0, 2.0]), np.array([2.0, 3.0]))
        assert out.tolist() == [4.0, 18.0]

    def test_zero_width_is_free(self):
        assert upsilon(100.0, 0.0) == 0.0


class TestM3:
    def test_manual_example(self):
        dom = _domain([0, 1, 2, 3])
        hist = Histogram.from_splits(dom, np.array([0, 2]))
        fprime = np.array([1.0, 1.0, 2.0, 0.0])
        # Bucket [0,1]: mass 2, width 1 -> 2.  Bucket [2,3]: mass 2, width 1 -> 2.
        assert m3(hist, dom, fprime) == pytest.approx(4.0)

    def test_identity_histogram_scores_zero(self):
        dom = _domain([3, 7, 9])
        hist = Histogram.identity(dom)
        assert m3(hist, dom, np.array([5.0, 5.0, 5.0])) == 0.0

    def test_misaligned_fprime_rejected(self):
        dom = _domain([1, 2])
        hist = Histogram.identity(dom)
        with pytest.raises(ValueError):
            m3(hist, dom, np.ones(3))

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None)
    def test_property_lemma2_identity(self, seed):
        """Lemma 2: sum over QR points of ||eps||^2 equals the bucketed M3.

        Build a random histogram over a random domain and random 'QR'
        points whose coordinates are domain values; the per-point error
        norm accounting must equal the F'-weighted bucket form.
        """
        rng = np.random.default_rng(seed)
        m = int(rng.integers(4, 30))
        values = np.sort(rng.choice(1000, size=m, replace=False)).astype(float)
        dom = _domain(values)
        n_cuts = int(rng.integers(1, min(6, m - 1) + 1))
        cuts = np.sort(rng.choice(np.arange(1, m), size=n_cuts, replace=False))
        hist = Histogram.from_splits(dom, np.concatenate([[0], cuts]))
        # Random QR member coordinates drawn from the domain.
        d = int(rng.integers(1, 6))
        n_pts = int(rng.integers(1, 10))
        coords = rng.choice(values, size=(n_pts, d))
        fprime = dom.project_frequencies(coords.ravel()).astype(float)
        lhs = float(
            np.sum(hist.widths[hist.lookup(coords)] ** 2)
        )  # sum of ||eps||^2 over points
        rhs = m3(hist, dom, fprime)
        assert lhs == pytest.approx(rhs)


class TestMSSE:
    def test_uniform_frequencies_score_zero(self):
        dom = _domain([1, 2, 3, 4], [5, 5, 5, 5])
        hist = Histogram.from_splits(dom, np.array([0, 2]))
        assert msse(hist, dom) == pytest.approx(0.0)

    def test_variance_within_bucket(self):
        dom = _domain([1, 2], [0, 10])
        hist = Histogram.from_splits(dom, np.array([0]))
        # mean 5, errors (0-5)^2 + (10-5)^2 = 50.
        assert msse(hist, dom) == pytest.approx(50.0)

    def test_equidepth_not_always_voptimal(self):
        rng = np.random.default_rng(0)
        counts = rng.integers(1, 100, size=40)
        dom = _domain(np.arange(40), counts)
        hw = build_equiwidth(dom, 4)
        hd = build_equidepth(dom, 4)
        assert msse(hw, dom) >= 0 and msse(hd, dom) >= 0


class TestErrorVectorNorm:
    def test_identity_histogram_zero_error(self):
        dom = _domain([1, 5, 9])
        hist = Histogram.identity(dom)
        pts = np.array([[1.0, 9.0], [5.0, 5.0]])
        assert mean_error_vector_norm_sq(hist, pts) == 0.0

    def test_wider_buckets_larger_error(self):
        dom = _domain(np.arange(16))
        narrow = build_equiwidth(dom, 8)
        wide = build_equiwidth(dom, 2)
        pts = np.array([[0.0, 15.0], [7.0, 8.0]])
        assert mean_error_vector_norm_sq(wide, pts) > mean_error_vector_norm_sq(
            narrow, pts
        )
