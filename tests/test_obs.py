"""The observability subsystem: registry, telemetry, hooks, reporters.

Covers the instrument semantics (merge, snapshot, exposition formats),
the cache telemetry counters, the engine's ``MetricsHook`` aggregation —
including the reconciliation invariant that registry totals equal the
sums over per-query ``QueryStats`` in both execution modes — and that
enabling metrics never changes results or I/O counts.
"""

import json
import math

import numpy as np
import pytest

from repro.core.cache import ApproximateCache, NoCache
from repro.engine.context import PhaseHook
from repro.eval.methods import build_caching_pipeline, build_tree_pipeline
from repro.eval.runner import Experiment
from repro.obs import CacheTelemetry, Counter, FixedHistogram, Gauge, MetricsRegistry
from repro.obs.hooks import MetricsHook
from repro.obs.reporter import (
    MetricsReporter,
    observed_vs_predicted,
    publish_cache_metrics,
)


class TestCounter:
    def test_inc_and_set_total(self):
        c = Counter("hits")
        c.inc()
        c.inc(4)
        assert c.value == 5
        c.set_total(42)
        assert c.value == 42

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("hits").inc(-1)

    def test_merge_adds(self):
        a, b = Counter("x"), Counter("x")
        a.inc(3)
        b.inc(4)
        a.merge(b)
        assert a.value == 7


class TestGauge:
    def test_set_and_inc(self):
        g = Gauge("occupancy")
        g.set(10)
        g.inc(-3)
        assert g.value == 7

    def test_merge_prefers_updated_value(self):
        a, b = Gauge("x"), Gauge("x")
        a.set(5)
        a.merge(b)  # b never set -> a keeps its value
        assert a.value == 5
        b.set(9)
        a.merge(b)
        assert a.value == 9


class TestFixedHistogram:
    def test_observation_placement(self):
        h = FixedHistogram("lat", bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 3.0, 100.0):
            h.observe(v)
        # 0.5 and 1.0 land in the first bucket (inclusive upper edge),
        # 3.0 in (2, 4], 100 overflows.
        assert h.counts.tolist() == [2, 0, 1, 1]
        assert h.count == 4
        assert h.sum == pytest.approx(104.5)
        assert h.mean == pytest.approx(104.5 / 4)

    def test_observe_many_matches_loop(self):
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 5, 100)
        a = FixedHistogram("lat", bounds=(1.0, 2.0, 4.0))
        b = FixedHistogram("lat", bounds=(1.0, 2.0, 4.0))
        a.observe_many(values)
        for v in values:
            b.observe(v)
        assert np.array_equal(a.counts, b.counts)
        assert a.sum == pytest.approx(b.sum)

    def test_quantile_interpolates(self):
        h = FixedHistogram("lat", bounds=(1.0, 2.0))
        h.observe_many(np.full(10, 1.5))
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert math.isnan(FixedHistogram("e", bounds=(1.0,)).quantile(0.5))

    def test_merge_requires_equal_bounds(self):
        a = FixedHistogram("lat", bounds=(1.0, 2.0))
        b = FixedHistogram("lat", bounds=(1.0, 3.0))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            FixedHistogram("lat", bounds=(2.0, 1.0))
        with pytest.raises(ValueError):
            FixedHistogram("lat", bounds=())


class TestMetricsRegistry:
    def test_get_or_create_and_labels(self):
        reg = MetricsRegistry()
        a = reg.counter("phase_calls", phase="reduce")
        b = reg.counter("phase_calls", phase="reduce")
        c = reg.counter("phase_calls", phase="refine")
        assert a is b and a is not c
        a.inc()
        assert reg.value("phase_calls", phase="reduce") == 1
        assert reg.value("phase_calls", phase="refine") == 0
        assert reg.value("nonexistent") == 0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_empty_registry_is_truthy(self):
        # Regression: ``__len__`` made a fresh registry falsy, so
        # ``if metrics:`` silently dropped the caller's sink.
        assert MetricsRegistry()
        assert len(MetricsRegistry()) == 0

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("hits").inc(2)
        b.counter("hits").inc(3)
        b.counter("only_b").inc(1)
        b.histogram("lat", bounds=(1.0, 2.0)).observe(1.5)
        b.gauge("occ").set(7)
        a.merge(b)
        assert a.value("hits") == 5
        assert a.value("only_b") == 1
        assert a.get("lat").count == 1
        assert a.value("occ") == 7
        # Merging copies: mutating b afterwards must not leak into a.
        b.counter("only_b").inc(10)
        assert a.value("only_b") == 1

    def test_snapshot_and_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits", help="h").inc(3)
        reg.histogram("lat", bounds=(1.0,)).observe(0.5)
        path = tmp_path / "m.json"
        reg.to_json(path, run="unit")
        payload = json.loads(path.read_text())
        assert payload["run"] == "unit"
        by_name = {m["name"]: m for m in payload["metrics"]}
        assert by_name["hits"]["value"] == 3
        assert by_name["lat"]["counts"] == [1, 0]

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("hits", help="total hits").inc(3)
        reg.histogram("lat", bounds=(1.0, 2.0), phase="reduce").observe(1.5)
        text = reg.to_prometheus()
        assert "# HELP hits total hits" in text
        assert "# TYPE hits counter" in text
        assert "hits 3" in text
        # Cumulative buckets: nothing <= 1, one <= 2, one <= +Inf.
        assert 'lat_bucket{le="1",phase="reduce"} 0' in text
        assert 'lat_bucket{le="2",phase="reduce"} 1' in text
        assert 'lat_bucket{le="+Inf",phase="reduce"} 1' in text
        assert 'lat_count{phase="reduce"} 1' in text

    def test_table_lists_instruments(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(3)
        reg.histogram("lat", bounds=(1.0,)).observe(0.5)
        table = reg.to_table()
        assert "hits" in table and "lat" in table and "p50" in table


class TestCacheTelemetry:
    def test_record_and_ratios(self):
        t = CacheTelemetry()
        t.record_lookup(10, 7)
        t.record_lookup(5, 0)
        assert t.lookup_calls == 2
        assert t.lookups == 15 and t.hits == 7 and t.misses == 8
        assert t.rho_hit == pytest.approx(7 / 15)
        assert CacheTelemetry().rho_hit == 0.0

    def test_merge_and_reset(self):
        a, b = CacheTelemetry(), CacheTelemetry()
        a.record_lookup(4, 2)
        b.record_lookup(6, 3)
        b.admissions = 5
        a.merge(b)
        assert a.lookups == 10 and a.hits == 5 and a.admissions == 5
        a.reset()
        assert a.lookups == 0 and a.snapshot()["rho_hit"] == 0.0

    def test_caches_count_lookups(self, tiny_dataset, tiny_context):
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context
        )
        query = tiny_dataset.query_log.test[0]
        before = pipeline.cache.telemetry.lookup_calls
        pipeline.search(query)
        t = pipeline.cache.telemetry
        assert t.lookup_calls == before + 1
        assert t.lookups >= t.hits >= 0

    def test_nocache_all_misses(self):
        cache = NoCache()
        cache.lookup(np.zeros(3), np.arange(4))
        assert cache.telemetry.lookups == 4
        assert cache.telemetry.hits == 0


class TestPublishCacheMetrics:
    def test_mirrors_telemetry_and_occupancy(self, tiny_dataset, tiny_context):
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context
        )
        pipeline.search(tiny_dataset.query_log.test[0])
        reg = MetricsRegistry()
        publish_cache_metrics(pipeline.cache, reg)
        t = pipeline.cache.telemetry
        assert reg.value("cache_hits_total") == t.hits
        assert reg.value("cache_lookups_total") == t.lookups
        assert reg.value("cache_occupancy_bytes") == pipeline.cache.used_bytes
        assert reg.value("cache_capacity_bytes") == pipeline.cache.capacity_bytes
        # Re-publishing re-sets totals instead of doubling them.
        publish_cache_metrics(pipeline.cache, reg)
        assert reg.value("cache_hits_total") == t.hits


def _registry_totals(reg):
    return {
        "queries": reg.value("engine_queries_total"),
        "candidates": reg.value("engine_candidates_total"),
        "hits": reg.value("engine_cache_hits_total"),
        "pruned": reg.value("engine_pruned_total"),
        "confirmed": reg.value("engine_confirmed_total"),
        "crefine": reg.value("engine_crefine_total"),
        "fetches": reg.value("engine_refined_fetches_total"),
        "gen_io": reg.value("engine_gen_page_reads_total"),
        "refine_io": reg.value("engine_refine_page_reads_total"),
    }


def _stats_totals(stats):
    return {
        "queries": len(stats),
        "candidates": sum(s.num_candidates for s in stats),
        "hits": sum(s.cache_hits for s in stats),
        "pruned": sum(s.pruned for s in stats),
        "confirmed": sum(s.confirmed for s in stats),
        "crefine": sum(s.c_refine for s in stats),
        "fetches": sum(s.refined_fetches for s in stats),
        "gen_io": sum(s.gen_page_reads for s in stats),
        "refine_io": sum(s.refine_page_reads for s in stats),
    }


class TestMetricsHookAggregation:
    @pytest.mark.parametrize("batched", [False, True])
    def test_totals_reconcile_with_per_query_stats(
        self, tiny_dataset, tiny_context, batched
    ):
        """Registry totals == sums over QueryStats, in both modes."""
        reg = MetricsRegistry()
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context, metrics=reg
        )
        queries = tiny_dataset.query_log.test[:8]
        if batched:
            results = pipeline.search_many(queries)
        else:
            results = [pipeline.search(q) for q in queries]
        stats = [r.stats for r in results]
        assert _registry_totals(reg) == _stats_totals(stats)
        # Phase events fired for every query.
        assert reg.value("engine_phase_calls", phase="reduce") == len(queries)
        assert reg.get("engine_phase_seconds", phase="refine").count == len(queries)

    def test_phase_page_read_attribution(self, tiny_dataset, tiny_context):
        reg = MetricsRegistry()
        pipeline = build_caching_pipeline(
            tiny_dataset, method="NO-CACHE", context=tiny_context, metrics=reg
        )
        for q in tiny_dataset.query_log.test[:4]:
            pipeline.search(q)
        # Generation I/O happens in the generate phase, refinement I/O in
        # refine; the per-phase split must re-sum to the query totals.
        assert reg.value(
            "engine_phase_gen_page_reads", phase="generate"
        ) == reg.value("engine_gen_page_reads_total")
        assert reg.value(
            "engine_phase_refine_page_reads", phase="refine"
        ) == reg.value("engine_refine_page_reads_total")
        assert reg.value("engine_refine_page_reads_total") > 0

    def test_live_ratio_gauges(self, tiny_dataset, tiny_context):
        reg = MetricsRegistry()
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context, metrics=reg
        )
        stats = [
            pipeline.search(q).stats for q in tiny_dataset.query_log.test[:6]
        ]
        hits = sum(s.cache_hits for s in stats)
        cands = sum(s.num_candidates for s in stats)
        settled = sum(s.pruned + s.confirmed for s in stats)
        assert reg.value("engine_rho_hit") == pytest.approx(hits / cands)
        assert reg.value("engine_rho_refine") == pytest.approx(1 - settled / hits)

    def test_tree_queries_feed_tree_counters(self, micro_dataset):
        reg = MetricsRegistry()
        pipeline = build_tree_pipeline(
            micro_dataset, index_name="idistance", method="EXACT",
            cache_bytes=1 << 12, metrics=reg,
        )
        stats = [
            pipeline.search(q, 5).stats for q in micro_dataset.query_log.test[:4]
        ]
        assert reg.value("engine_queries_total") == 4
        assert reg.value("engine_leaves_streamed_total") == sum(
            s.leaves_streamed for s in stats
        )
        assert reg.value("engine_leaf_fetches_total") == sum(
            s.leaf_fetches for s in stats
        )

    def test_periodic_reporter_fires(self):
        calls = []
        hook = MetricsHook(report_every=2, reporter=calls.append)
        from repro.engine.stats import QueryStats

        for _ in range(5):
            hook.observe_query(QueryStats(10, 5, 2, 1, 2, 2, 2, 3))
        assert len(calls) == 2  # after queries 2 and 4
        assert all(reg is hook.registry for reg in calls)


class TestMetricsNeutrality:
    @pytest.mark.parametrize("batched", [False, True])
    def test_results_and_io_unchanged(self, tiny_dataset, tiny_context, batched):
        """Enabling metrics changes neither results nor I/O counts."""
        plain = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context
        )
        metered = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context,
            metrics=MetricsRegistry(),
        )
        queries = tiny_dataset.query_log.test[:8]
        if batched:
            a = plain.search_many(queries)
            b = metered.search_many(queries)
        else:
            a = [plain.search(q) for q in queries]
            b = [metered.search(q) for q in queries]
        for ra, rb in zip(a, b):
            assert np.array_equal(ra.ids, rb.ids)
            assert np.allclose(ra.distances, rb.distances)
            assert ra.stats == rb.stats


class _BatchProbeSpy(PhaseHook):
    """Records whether per-query contexts carry batch-probe wall time."""

    def __init__(self):
        self.probe_shares = []

    def on_phase_end(self, phase, ctx, elapsed_s):
        if phase == "reduce":
            self.probe_shares.append(ctx.timings.get("batch_probe"))


class TestBatchProbeAttribution:
    def test_batch_probe_time_lands_in_query_contexts(
        self, tiny_dataset, tiny_context
    ):
        """Regression: the chunk's union cache probe ran under a throwaway
        context, so its wall time vanished from every per-query timing."""
        spy = _BatchProbeSpy()
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context
        )
        pipeline.engine.hooks = (spy,)
        queries = tiny_dataset.query_log.test[:6]
        pipeline.search_many(queries)
        assert len(spy.probe_shares) == len(queries)
        assert all(share is not None and share > 0 for share in spy.probe_shares)

    def test_batch_probe_phase_in_metrics(self, tiny_dataset, tiny_context):
        reg = MetricsRegistry()
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context, metrics=reg
        )
        pipeline.search_many(tiny_dataset.query_log.test[:6])
        hist = reg.get("engine_phase_seconds", phase="batch_probe")
        assert hist is not None and hist.count >= 1


class TestObservedVsPredicted:
    def test_drift_view(self, tiny_dataset, tiny_context):
        reg = MetricsRegistry()
        pipeline = build_caching_pipeline(
            tiny_dataset, method="HC-O", context=tiny_context, metrics=reg
        )
        for q in tiny_dataset.query_log.test[:6]:
            pipeline.search(q)
        cache = pipeline.cache
        assert isinstance(cache, ApproximateCache)
        out = observed_vs_predicted(
            reg,
            tiny_context.cost_model(),
            cache=cache,
            encoder=cache.encoder,
            qr_points=tiny_context.qr_points,
        )
        assert out["rho_hit"]["observed"] == pytest.approx(
            reg.value("engine_rho_hit")
        )
        for entry in out.values():
            assert entry["predicted"] is not None
            assert entry["drift"] == pytest.approx(
                entry["observed"] - entry["predicted"]
            )
        assert reg.value("costmodel_drift", ratio="rho_hit") == pytest.approx(
            out["rho_hit"]["drift"]
        )

    def test_missing_inputs_leave_predictions_none(self):
        from repro.core.cost_model import CostModel

        reg = MetricsRegistry()
        model = CostModel(
            dim=4, value_span=10.0, d_max=5.0,
            candidate_frequencies=np.ones(10), avg_candidates=5.0,
        )
        out = observed_vs_predicted(reg, model)
        assert out["rho_hit"]["predicted"] is None
        assert out["rho_hit"]["drift"] is None


class TestMetricsReporter:
    def test_render_formats(self):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        lines = []
        MetricsReporter(reg, fmt="table", sink=lines.append).report()
        assert "hits" in lines[0]
        assert "# TYPE hits counter" in MetricsReporter(reg, fmt="prom").render()
        with pytest.raises(ValueError):
            MetricsReporter(reg, fmt="xml")

    def test_write_json(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("hits").inc(2)
        path = MetricsReporter(reg).write_json(tmp_path / "m.json", tag="t")
        payload = json.loads(path.read_text())
        assert payload["tag"] == "t"

    def test_usable_as_periodic_sink(self):
        reg = MetricsRegistry()
        outputs = []
        hook = MetricsHook(
            reg, report_every=1,
            reporter=MetricsReporter(reg, sink=outputs.append),
        )
        from repro.engine.stats import QueryStats

        hook.observe_query(QueryStats(4, 2, 1, 0, 1, 1, 1, 1))
        assert len(outputs) == 1 and "engine_queries_total" in outputs[0]


class TestExperimentMetrics:
    def test_snapshot_attached_to_result(self, tiny_dataset, tiny_context):
        result = Experiment(
            tiny_dataset, method="HC-O", metrics=True
        ).run(context=tiny_context)
        assert result.metrics is not None
        names = {m["name"] for m in result.metrics["metrics"]}
        assert "engine_queries_total" in names
        assert "cache_hits_total" in names
        assert "observed_vs_predicted" in result.metrics
        by_name = {
            (m["name"], tuple(sorted(m["labels"].items()))): m
            for m in result.metrics["metrics"]
        }
        assert by_name[("engine_queries_total", ())]["value"] == result.num_queries

    def test_caller_registry_reused(self, tiny_dataset, tiny_context):
        reg = MetricsRegistry()
        result = Experiment(
            tiny_dataset, method="HC-O", metrics=reg
        ).run(context=tiny_context)
        assert reg.value("engine_queries_total") == result.num_queries

    def test_off_by_default(self, tiny_dataset, tiny_context):
        result = Experiment(tiny_dataset, method="HC-O").run(context=tiny_context)
        assert result.metrics is None
