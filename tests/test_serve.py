"""Deterministic-time unit suite for the serving layer (``repro.serve``).

Every test here runs on the :class:`~repro.serve.ManualClock` + inline
executor: time moves only when a test advances it, so flush-on-max-batch
vs flush-on-max-wait boundaries, admission windows, SLA-deadline expiry
mid-queue and hot cache swaps are all exactly reproducible — no real
sleeps anywhere (the single threaded-executor smoke test waits on a
completion event, never on wall-clock time).
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import ApproximateCache, CachePolicy
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.engine.engine import QueryEngine
from repro.index.linear_scan import LinearScanIndex
from repro.obs.registry import MetricsRegistry
from repro.obs.reporter import serve_summary
from repro.serve import (
    InlineExecutor,
    ManualClock,
    Overloaded,
    RealClock,
    ServeConfig,
    Server,
    SlaTier,
    ThreadedExecutor,
    run_open_loop,
)
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

SEED = 20260808
N_POINTS = 200
DIM = 4
K = 5
CACHE_BYTES = 1 << 11


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(N_POINTS, DIM))
    queries = rng.normal(size=(24, DIM))
    frequencies = rng.integers(0, 9, size=N_POINTS).astype(np.int64)
    return {"points": points, "queries": queries, "frequencies": frequencies}


def make_engine(data) -> QueryEngine:
    """A small static-cache engine (batchable, deterministic)."""
    points = data["points"]
    encoder = GlobalHistogramEncoder(
        build_equidepth(ValueDomain.from_points(points), 16), DIM
    )
    cache = ApproximateCache(encoder, CACHE_BYTES, N_POINTS, CachePolicy.HFF)
    cache.populate_hff(data["frequencies"], points)
    point_file = PointFile(points, disk=SimulatedDisk(DiskConfig()))
    return QueryEngine.for_index(LinearScanIndex(N_POINTS), point_file, cache)


def make_server(data, **kwargs):
    clock = kwargs.pop("clock", None) or ManualClock()
    engine = kwargs.pop("engine", None) or make_engine(data)
    config = kwargs.pop("config", None) or ServeConfig(
        max_queue_depth=8, max_batch=4, max_wait_us=1000.0
    )
    server = Server(engine, config=config, default_k=K, clock=clock, **kwargs)
    return server, engine, clock


def assert_same_result(response, baseline, where=""):
    result = response.result
    assert np.array_equal(result.ids, baseline.ids), where
    assert np.array_equal(result.distances, baseline.distances), where
    assert np.array_equal(result.exact_mask, baseline.exact_mask), where


# ----------------------------------------------------------------------
# Clock
# ----------------------------------------------------------------------
class TestManualClock:
    def test_moves_only_when_advanced(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == 5.0
        assert clock.advance(1.5) == 6.5
        assert clock.now() == 6.5

    def test_sleep_advances(self):
        clock = ManualClock()
        clock.sleep(0.25)
        assert clock.now() == 0.25

    def test_time_never_reverses(self):
        with pytest.raises(ValueError):
            ManualClock().advance(-1.0)


# ----------------------------------------------------------------------
# Micro-batcher flush boundaries
# ----------------------------------------------------------------------
class TestFlushBoundaries:
    def test_no_flush_below_batch_and_before_wait(self, data):
        server, _, clock = make_server(data)
        for q in data["queries"][:3]:
            server.submit(q)
        assert server.pump() == 0
        assert server.queue_depth == 3
        # One tick under the max-wait boundary: still no flush.
        clock.advance(server.config.max_wait_s - 1e-9)
        assert server.pump() == 0
        server.close()

    def test_flush_exactly_at_max_batch(self, data):
        server, _, clock = make_server(data)
        tickets = [server.submit(q) for q in data["queries"][:4]]
        assert server.pump() == 4  # 4 == max_batch, no time has passed
        assert all(t.done for t in tickets)
        assert {t.response.batch_size for t in tickets} == {4}
        server.close()

    def test_flush_exactly_at_max_wait(self, data):
        server, _, clock = make_server(data)
        ticket = server.submit(data["queries"][0])
        clock.advance(server.config.max_wait_s)  # inclusive boundary
        assert server.pump() == 1
        assert ticket.response.batch_size == 1
        assert ticket.response.queue_wait_s == pytest.approx(
            server.config.max_wait_s
        )
        server.close()

    def test_wait_measured_from_oldest_request(self, data):
        server, _, clock = make_server(data)
        first = server.submit(data["queries"][0])
        clock.advance(server.config.max_wait_s / 2)
        second = server.submit(data["queries"][1])
        clock.advance(server.config.max_wait_s / 2)
        # The *oldest* request hit the boundary; both flush together.
        assert server.pump() == 2
        assert first.response.batch_size == 2
        assert second.response.batch_size == 2
        assert second.response.queue_wait_s == pytest.approx(
            server.config.max_wait_s / 2
        )
        server.close()

    def test_oversize_drain_preserves_max_batch(self, data):
        server, _, _ = make_server(
            data, config=ServeConfig(max_queue_depth=64, max_batch=4)
        )
        tickets = [server.submit(q) for q in data["queries"][:10]]
        assert server.drain() == 10
        sizes = [t.response.batch_size for t in tickets]
        assert sizes == [4, 4, 4, 4, 4, 4, 4, 4, 2, 2]
        server.close()

    def test_zero_wait_flushes_every_pump(self, data):
        server, _, _ = make_server(
            data, config=ServeConfig(max_batch=8, max_wait_us=0.0)
        )
        ticket = server.submit(data["queries"][0])
        assert server.pump() == 1  # no time advanced, flushes anyway
        assert ticket.done
        server.close()


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------
class TestAdmission:
    def test_reject_at_exact_queue_depth(self, data):
        server, _, _ = make_server(
            data, config=ServeConfig(max_queue_depth=3, max_batch=100)
        )
        accepted = [server.submit(data["queries"][i]) for i in range(3)]
        assert all(not t.done for t in accepted)
        rejected = server.submit(data["queries"][3])
        assert rejected.done
        response = rejected.response
        assert not response.ok
        assert response.result is None
        assert response.overloaded == Overloaded(
            queue_depth=3, max_depth=3, tier="default"
        )
        # Draining frees the queue: the next submit is admitted.
        server.drain()
        assert not server.submit(data["queries"][3]).done
        server.close()

    def test_rejection_is_not_counted_as_served(self, data):
        registry = MetricsRegistry()
        server, _, _ = make_server(
            data,
            config=ServeConfig(max_queue_depth=1, max_batch=100),
            metrics=registry,
        )
        server.submit(data["queries"][0])
        server.submit(data["queries"][1])  # rejected
        server.drain()
        assert registry.value("serve_requests_total", tier="default") == 1
        assert registry.value("serve_rejected_total", tier="default") == 1
        server.close()

    def test_submit_after_close_raises(self, data):
        server, _, _ = make_server(data)
        server.close()
        with pytest.raises(RuntimeError):
            server.submit(data["queries"][0])

    def test_close_drains_pending(self, data):
        server, _, _ = make_server(data)
        tickets = [server.submit(q) for q in data["queries"][:2]]
        server.close()
        assert all(t.done for t in tickets)
        assert all(t.response.ok for t in tickets)


# ----------------------------------------------------------------------
# SLA tiers and deadlines
# ----------------------------------------------------------------------
TIERED = ServeConfig(
    max_queue_depth=16,
    max_batch=4,
    max_wait_us=1000.0,
    tiers=(SlaTier("gold", deadline_ms=10.0), SlaTier("batch", 0.0)),
)


class TestSlaDeadlines:
    def test_expiry_mid_queue_degrades_with_certificate(self, data):
        server, engine, clock = make_server(data, config=TIERED)
        expired = server.submit(data["queries"][0], tier="gold")
        fresh = server.submit(data["queries"][1], tier="batch")
        clock.advance(0.020)  # past gold's 10 ms budget, while queued
        server.drain()
        response = expired.response
        assert response.degraded
        outcome = response.result.outcome
        assert not outcome.complete
        assert outcome.reason == "deadline"
        # The certificate: an empty degraded answer carries an unbounded
        # error bound — the caller can see exactly how much to trust it.
        assert outcome.max_bound_error == float("inf")
        assert response.result.ids.size == 0
        assert not response.result.exact_mask.any()
        # Its batchmate without a budget is served completely.
        assert fresh.response.ok and not fresh.response.degraded
        assert_same_result(
            fresh.response, engine.search(data["queries"][1], K)
        )
        server.close()

    def test_queue_wait_charged_against_budget(self, data):
        """The budget clock starts at admission, not dispatch."""
        server, _, clock = make_server(data, config=TIERED)
        ticket = server.submit(data["queries"][0], tier="gold")
        queued = server._pending[0]
        assert queued.deadline is not None
        clock.advance(0.004)
        assert queued.deadline.elapsed_s() == pytest.approx(0.004)
        assert not queued.deadline.expired
        clock.advance(0.007)  # total 11 ms in queue > 10 ms budget
        assert queued.deadline.expired
        server.drain()
        assert ticket.response.degraded
        server.close()

    def test_unexpired_tier_serves_normally(self, data):
        server, engine, clock = make_server(data, config=TIERED)
        ticket = server.submit(data["queries"][2], tier="gold")
        clock.advance(0.002)  # within budget
        server.drain()
        assert ticket.response.ok and not ticket.response.degraded
        assert ticket.response.tier == "gold"
        assert_same_result(ticket.response, engine.search(data["queries"][2], K))
        server.close()

    def test_unknown_tier_rejected_loudly(self, data):
        server, _, _ = make_server(data, config=TIERED)
        with pytest.raises(ValueError, match="unknown SLA tier"):
            server.submit(data["queries"][0], tier="platinum")
        server.close()

    def test_deadline_expiry_counted_in_metrics(self, data):
        registry = MetricsRegistry()
        server, _, clock = make_server(data, config=TIERED, metrics=registry)
        server.submit(data["queries"][0], tier="gold")
        clock.advance(1.0)
        server.drain()
        assert registry.value("serve_deadline_expired_total", tier="gold") == 1
        assert registry.value("serve_degraded_total", tier="gold") == 1
        server.close()


# ----------------------------------------------------------------------
# Correctness through the batcher
# ----------------------------------------------------------------------
class TestBatchedIdentity:
    def test_each_ticket_gets_its_own_answer(self, data):
        server, engine, _ = make_server(
            data, config=ServeConfig(max_batch=8, max_queue_depth=64)
        )
        tickets = [server.submit(q) for q in data["queries"][:8]]
        server.pump()
        for i, ticket in enumerate(tickets):
            assert_same_result(
                ticket.response, engine.search(data["queries"][i], K),
                where=f"query={i} seed={SEED}",
            )
        server.close()

    def test_mixed_k_grouping(self, data):
        server, engine, _ = make_server(
            data, config=ServeConfig(max_batch=6, max_queue_depth=64)
        )
        ks = [3, 7, 3, 1, 7, 3]
        tickets = [
            server.submit(q, k=k) for q, k in zip(data["queries"], ks)
        ]
        server.pump()
        for i, (ticket, k) in enumerate(zip(tickets, ks)):
            assert len(ticket.response.result.ids) == k
            assert_same_result(
                ticket.response, engine.search(data["queries"][i], k),
                where=f"query={i} k={k} seed={SEED}",
            )
        server.close()

    def test_serve_one_is_immediate_inline(self, data):
        server, engine, _ = make_server(data)
        response = server.serve_one(data["queries"][0])
        assert response.ok
        assert_same_result(response, engine.search(data["queries"][0], K))
        server.close()

    def test_sharded_engine_target(self, data):
        from repro.shard import ShardedEngine, build_shard_specs

        specs = build_shard_specs(
            data["points"], 2, index_name="linear", seed=0
        )
        with ShardedEngine(specs, executor="serial") as engine:
            baseline = [engine.search(q, K) for q in data["queries"][:6]]
            server, _, _ = make_server(
                data, engine=engine,
                config=ServeConfig(max_batch=6, max_queue_depth=64),
            )
            tickets = [server.submit(q) for q in data["queries"][:6]]
            server.pump()
            for ticket, base in zip(tickets, baseline):
                assert_same_result(ticket.response, base)
            server.close()


# ----------------------------------------------------------------------
# Hot snapshot swap mid-stream
# ----------------------------------------------------------------------
class TestHotSwap:
    def test_swap_mid_stream_zero_dropped_zero_bit_wrong(
        self, micro_dataset, tmp_path
    ):
        """A DriftController retrain (publish-then-swap) between batches
        must not drop or corrupt a single in-flight answer."""
        from repro.spec.build import build_pipeline, spec_from_kwargs
        from repro.workload.drift import DriftController, EveryNQueries
        from repro.workload.model import WindowWorkload
        from repro.workload.train import TrainSpec

        spec = spec_from_kwargs(
            dataset=micro_dataset, method="HC-O", k=K, cache_bytes=CACHE_BYTES
        )
        pipeline = build_pipeline(spec, dataset=micro_dataset)
        baseline_pipeline = build_pipeline(spec, dataset=micro_dataset)
        context = pipeline.context
        controller = DriftController(
            WindowWorkload(capacity=256),
            TrainSpec(
                points=context.point_file.points,
                index=context.index,
                k=K,
                method="HC-O",
                tau=spec.cache.tau,
                cache_bytes=CACHE_BYTES,
            ),
            engine=pipeline.engine,
            trigger=EveryNQueries(6),
            snapshot_root=tmp_path / "maintenance",
        )
        server = Server(
            pipeline,
            config=ServeConfig(max_batch=4, max_queue_depth=64),
            default_k=K,
            clock=ManualClock(),
            controller=controller,
        )
        queries = micro_dataset.query_log.test
        original_cache = pipeline.engine.reduce.cache
        tickets = [server.submit(q) for q in queries]
        server.drain()
        server.close()
        assert controller.retrains >= 1
        assert pipeline.engine.reduce.cache is not original_cache
        # Publish-then-swap left a versioned artifact behind.
        assert (tmp_path / "maintenance" / "CURRENT").exists()
        # Zero dropped...
        assert all(t.done and t.response.ok for t in tickets)
        # ...and zero bit-wrong: every answer equals the never-swapped twin.
        for i, (ticket, q) in enumerate(zip(tickets, queries)):
            base = baseline_pipeline.search(q, K)
            result = ticket.response.result
            assert np.array_equal(result.ids, base.ids), f"query={i}"
            assert np.array_equal(result.distances, base.distances), (
                f"query={i}"
            )

    def test_manual_swap_between_pumps(self, data):
        """Direct engine.swap_cache between batches: later batches serve
        from the new cache, answers stay identical."""
        server, engine, _ = make_server(
            data, config=ServeConfig(max_batch=4, max_queue_depth=64)
        )
        first = [server.submit(q) for q in data["queries"][:4]]
        server.pump()
        replacement = make_engine(data).reduce.cache
        old = engine.swap_cache(replacement)
        assert old is not replacement
        second = [server.submit(q) for q in data["queries"][4:8]]
        server.pump()
        for i, ticket in enumerate(first + second):
            assert_same_result(
                ticket.response, engine.search(data["queries"][i], K),
                where=f"query={i}",
            )
        server.close()


# ----------------------------------------------------------------------
# Metrics and summary
# ----------------------------------------------------------------------
class TestServeMetrics:
    def test_counters_histograms_and_summary(self, data):
        registry = MetricsRegistry()
        server, _, clock = make_server(
            data,
            config=ServeConfig(
                max_queue_depth=4, max_batch=4,
                tiers=(SlaTier("gold", 10.0),),
            ),
            metrics=registry,
        )
        for q in data["queries"][:4]:
            server.submit(q)
        server.submit(data["queries"][4])  # rejected (depth 4)
        server.pump()  # one full batch
        expired = server.submit(data["queries"][5], tier="gold")
        clock.advance(1.0)
        server.drain()
        assert expired.response.degraded
        assert registry.value("serve_requests_total", tier="default") == 4
        assert registry.value("serve_requests_total", tier="gold") == 1
        assert registry.value("serve_rejected_total", tier="default") == 1
        assert registry.value("serve_batches_total") == 2
        assert registry.get("serve_batch_size").count == 2
        assert registry.get("serve_queue_wait_seconds").count == 5
        summary = serve_summary(registry)
        assert summary["tiers"]["default"]["served"] == 4
        assert summary["tiers"]["default"]["rejected"] == 1
        assert summary["tiers"]["gold"]["degraded"] == 1
        assert summary["tiers"]["gold"]["deadline_expired"] == 1
        assert summary["batches"] == 2
        assert summary["tiers"]["default"]["latency_p50_ms"] is not None
        server.close()

    def test_queue_depth_gauge_tracks(self, data):
        registry = MetricsRegistry()
        server, _, _ = make_server(data, metrics=registry)
        server.submit(data["queries"][0])
        server.submit(data["queries"][1])
        assert registry.value("serve_queue_depth") == 2
        server.drain()
        assert registry.value("serve_queue_depth") == 0
        server.close()


# ----------------------------------------------------------------------
# Open-loop load generator on the fake clock
# ----------------------------------------------------------------------
class TestLoadGen:
    def test_paced_arrivals_batch_by_wait(self, data):
        # 1000 q/s arrivals, 2 ms max wait -> ~2 requests per flush.
        server, _, _ = make_server(
            data,
            config=ServeConfig(max_batch=32, max_wait_us=2000.0,
                               max_queue_depth=64),
        )
        report = run_open_loop(
            server, data["queries"], rate_qps=1000.0
        )
        server.close()
        assert report.submitted == len(data["queries"])
        assert report.served == report.submitted
        assert report.rejected == 0
        assert 1.0 < report.mean_batch_size <= 3.0
        # Latency is queue wait + (zero-duration) execution on the fake
        # clock, so p99 is bounded by the flush wait.
        assert report.latency_p99_ms <= 2.1

    def test_saturating_load_fills_batches(self, data):
        server, _, _ = make_server(
            data,
            config=ServeConfig(max_batch=8, max_queue_depth=256),
        )
        report = run_open_loop(server, data["queries"], rate_qps=0.0)
        server.close()
        assert report.served == len(data["queries"])
        assert report.mean_batch_size == 8.0

    def test_overload_is_reported_not_raised(self, data):
        server, _, _ = make_server(
            data,
            config=ServeConfig(max_queue_depth=4, max_batch=100,
                               max_wait_us=1e9),
        )
        report = run_open_loop(server, data["queries"], rate_qps=0.0)
        server.close()
        assert report.rejected == len(data["queries"]) - 4
        assert report.served == 4


# ----------------------------------------------------------------------
# Executors
# ----------------------------------------------------------------------
class TestExecutors:
    def test_threaded_requires_real_clock(self, data):
        engine = make_engine(data)
        with pytest.raises(TypeError, match="RealClock"):
            Server(
                engine,
                clock=ManualClock(),
                executor=ThreadedExecutor(),
            )

    def test_threaded_smoke_event_driven(self, data):
        """Background dispatcher serves without the caller pumping.

        Event-driven (ticket.wait blocks on completion, not on a timer);
        the generous timeout only bounds a hang on failure.
        """
        engine = make_engine(data)
        baseline = [engine.search(q, K) for q in data["queries"][:4]]
        server = Server(
            engine,
            config=ServeConfig(max_batch=4, max_wait_us=500.0),
            default_k=K,
            clock=RealClock(),
            executor=ThreadedExecutor(),
        )
        tickets = [server.submit(q) for q in data["queries"][:4]]
        responses = [t.wait(timeout=30.0) for t in tickets]
        server.close()
        for response, base in zip(responses, baseline):
            assert_same_result(response, base)

    def test_inline_is_default(self, data):
        server, _, _ = make_server(data)
        assert isinstance(server.executor, InlineExecutor)
        assert server.executor.inline
        server.close()


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
class TestServeConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_queue_depth": 0},
            {"max_batch": 0},
            {"max_wait_us": -1.0},
            {"tiers": (SlaTier("a"), SlaTier("a"))},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ServeConfig(**kwargs)

    def test_default_tier_implicit_and_unlimited(self):
        config = ServeConfig()
        tier = config.tier()
        assert tier.name == "default"
        assert tier.budget_s is None

    def test_named_default_tier_keeps_budget(self):
        config = ServeConfig(tiers=(SlaTier("default", 5.0),))
        assert config.tier().budget_s == pytest.approx(0.005)

    def test_from_section_round_trip(self):
        from repro.spec.sections import ServeSection

        section = ServeSection(
            enabled=True, max_queue_depth=9, max_batch=3, max_wait_us=42.0,
            tiers={"gold": 7.0, "batch": 0.0},
        )
        config = ServeConfig.from_section(section)
        assert config.max_queue_depth == 9
        assert config.max_batch == 3
        assert config.max_wait_us == 42.0
        assert config.tier("gold").budget_s == pytest.approx(0.007)
        assert config.tier("batch").budget_s is None


# ----------------------------------------------------------------------
# Bounded dispatcher shutdown (escalation, not a hang)
# ----------------------------------------------------------------------
class TestThreadedStopEscalation:
    def test_join_timeout_must_be_positive(self):
        with pytest.raises(ValueError):
            ThreadedExecutor(join_timeout_s=0.0)

    def test_stuck_dispatch_is_abandoned_with_warning(self, data):
        """A dispatcher wedged inside the engine cannot hang close().

        ``stop`` bounds its join; past the bound it escalates the same
        way the shard executors treat hung workers — warn and abandon
        the daemon thread instead of waiting forever.
        """
        release = threading.Event()
        engine = make_engine(data)

        class _StuckEngine:
            def search_many(self, queries, k):
                release.wait(30.0)
                return [engine.search(q, k) for q in queries]

        executor = ThreadedExecutor(join_timeout_s=0.2)
        server = Server(
            _StuckEngine(),
            config=ServeConfig(max_batch=1, max_wait_us=0.0),
            default_k=K,
            clock=RealClock(),
            executor=executor,
        )
        server.submit(data["queries"][0])
        with pytest.warns(RuntimeWarning, match="abandoning"):
            server.close()
        assert executor.abandoned
        release.set()  # let the abandoned daemon finish quietly

    def test_clean_shutdown_does_not_escalate(self, data):
        executor = ThreadedExecutor(join_timeout_s=5.0)
        server = Server(
            make_engine(data),
            default_k=K,
            clock=RealClock(),
            executor=executor,
        )
        server.serve_one(data["queries"][0])
        server.close()
        assert not executor.abandoned


# ----------------------------------------------------------------------
# Load-report outcome split (shed never pollutes latency)
# ----------------------------------------------------------------------
class TestLoadReportSplit:
    def test_shed_split_out_of_served_and_percentiles(self, data):
        server, _, _ = make_server(
            data,
            config=ServeConfig(max_queue_depth=4, max_batch=100,
                               max_wait_us=1e9),
        )
        report = run_open_loop(server, data["queries"], rate_qps=0.0)
        server.close()
        assert report.served == 4
        assert report.rejected == len(data["queries"]) - 4
        counts = report.per_tier["default"]
        assert counts["served"] == 4
        assert counts["shed"] == report.rejected
        assert counts["degraded"] == 0
        assert counts["expired"] == 0
        # served + shed covers every submission, exactly once.
        assert counts["served"] + counts["shed"] == report.submitted

    def test_expired_is_the_deadline_slice_of_degraded(self, data):
        # 0.5 ms budget, 2 ms flush wait: requests queued longer than
        # their budget expire (the freshest request in a flush may still
        # be inside its budget, so expired < served).
        server, _, _ = make_server(
            data,
            config=ServeConfig(
                max_batch=32, max_wait_us=2000.0, max_queue_depth=64,
                default_tier="gold", tiers=(SlaTier("gold", 0.5),),
            ),
        )
        report = run_open_loop(
            server, data["queries"], tier="gold", rate_qps=1000.0
        )
        server.close()
        assert report.served == len(data["queries"])
        assert report.degraded > 0
        # Every degraded answer here came from the SLA deadline alone.
        assert report.expired == report.degraded
        counts = report.per_tier["gold"]
        assert counts["expired"] == counts["degraded"] == report.degraded
        assert counts["shed"] == 0

    def test_brownout_degraded_is_not_counted_expired(self, data):
        from repro.serve import FaultyReplica, ReplicaPool, ReplicaPoolConfig

        pool = ReplicaPool(
            [FaultyReplica(make_engine(data), crash_batches=range(1, 100))],
            config=ReplicaPoolConfig(restart_base_s=0.1),
        )
        server = Server(
            pool,
            config=ServeConfig(max_queue_depth=64, max_batch=4,
                               max_wait_us=1000.0),
            default_k=K,
            clock=ManualClock(),
        )
        report = run_open_loop(server, data["queries"][:6], rate_qps=0.0)
        server.close()
        assert report.degraded == 6
        assert report.expired == 0  # brownout is degraded, not expired
        counts = report.per_tier["default"]
        assert counts["degraded"] == 6 and counts["expired"] == 0

    def test_report_round_trips_per_tier(self, data):
        server, _, _ = make_server(
            data, config=ServeConfig(max_queue_depth=4, max_batch=100,
                                     max_wait_us=1e9),
        )
        report = run_open_loop(server, data["queries"], rate_qps=0.0)
        server.close()
        payload = report.to_dict()
        assert payload["expired"] == report.expired
        assert payload["per_tier"]["default"]["shed"] == report.rejected
