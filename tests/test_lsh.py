"""LSH substrate: hash families, collision probabilities, C2LSH, E2LSH."""

import numpy as np
import pytest

from repro.lsh.c2lsh import (
    C2LSHIndex,
    C2LSHParams,
    calibrate_base_radius,
    derive_collision_threshold,
)
from repro.lsh.e2lsh import E2LSHIndex
from repro.lsh.hashes import PStableHashFamily, collision_probability
from repro.storage.iostats import QueryIOTracker


@pytest.fixture(scope="module")
def clustered():
    rng = np.random.default_rng(21)
    centers = rng.uniform(0, 200, size=(4, 12))
    pts = np.concatenate(
        [c + rng.normal(scale=5, size=(250, 12)) for c in centers]
    )
    rng.shuffle(pts)
    return pts


class TestCollisionProbability:
    def test_zero_distance(self):
        assert collision_probability(0.0, 4.0) == 1.0

    def test_monotone_decreasing_in_distance(self):
        probs = [collision_probability(r, 4.0) for r in (0.5, 1, 2, 4, 8, 16)]
        assert probs == sorted(probs, reverse=True)

    def test_monotone_increasing_in_width(self):
        probs = [collision_probability(2.0, w) for w in (0.5, 1, 2, 4, 8)]
        assert probs == sorted(probs)

    def test_bounds(self):
        for r in (0.1, 1, 10):
            p = collision_probability(r, 3.0)
            assert 0.0 <= p <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            collision_probability(1.0, 0.0)
        with pytest.raises(ValueError):
            collision_probability(-1.0, 1.0)


class TestPStableFamily:
    def test_shapes(self):
        fam = PStableHashFamily(8, 16, 4.0, seed=0)
        pts = np.zeros((5, 8))
        assert fam.hash(pts).shape == (5, 16)

    def test_deterministic(self):
        a = PStableHashFamily(4, 8, 2.0, seed=3)
        b = PStableHashFamily(4, 8, 2.0, seed=3)
        pts = np.random.default_rng(0).normal(size=(10, 4))
        assert np.array_equal(a.hash(pts), b.hash(pts))

    def test_nearby_points_collide_more(self):
        rng = np.random.default_rng(1)
        fam = PStableHashFamily(16, 64, 8.0, seed=0)
        base = rng.normal(size=16) * 10
        near = base + rng.normal(size=16) * 0.1
        far = base + rng.normal(size=16) * 10
        h = fam.hash(np.vstack([base, near, far]))
        near_coll = np.sum(h[0] == h[1])
        far_coll = np.sum(h[0] == h[2])
        assert near_coll > far_coll

    def test_validation(self):
        with pytest.raises(ValueError):
            PStableHashFamily(0, 4, 1.0)
        with pytest.raises(ValueError):
            PStableHashFamily(4, 4, -1.0)


class TestC2LSHParams:
    def test_threshold_between_p1_and_p2(self):
        params = C2LSHParams()
        m, l, p1, p2 = derive_collision_threshold(params)
        assert p2 < l / m <= p1 + 1e-9
        assert 16 <= m <= 192

    def test_explicit_m(self):
        m, l, _, _ = derive_collision_threshold(C2LSHParams(n_hashes=50))
        assert m == 50
        assert 1 <= l <= 50

    def test_validation(self):
        with pytest.raises(ValueError):
            C2LSHParams(c=1)
        with pytest.raises(ValueError):
            C2LSHParams(delta=0.0)
        with pytest.raises(ValueError):
            C2LSHParams(width_factor=0.0)


class TestCalibration:
    def test_base_radius_positive(self, clustered):
        assert calibrate_base_radius(clustered) > 0

    def test_scale_tracks_data(self, clustered):
        small = calibrate_base_radius(clustered)
        big = calibrate_base_radius(clustered * 10)
        assert 5 < big / small < 20


class TestC2LSHIndex:
    def test_recall_of_true_neighbors(self, clustered):
        """The candidate set should contain most true kNN (the LSH
        quality guarantee, checked statistically)."""
        index = C2LSHIndex(clustered, seed=0)
        rng = np.random.default_rng(5)
        hits, total = 0, 0
        for qi in rng.choice(len(clustered), size=12, replace=False):
            q = clustered[qi] + 0.1
            cands = set(index.candidates(q, 10).tolist())
            d = np.linalg.norm(clustered - q, axis=1)
            truth = set(np.argsort(d)[:10].tolist())
            hits += len(truth & cands)
            total += 10
        assert hits / total >= 0.8

    def test_candidate_count_near_target(self, clustered):
        index = C2LSHIndex(clustered, seed=0)
        cands = index.candidates(clustered[0], 10)
        assert 10 <= len(cands) <= len(clustered)

    def test_io_charged(self, clustered):
        index = C2LSHIndex(clustered, seed=0)
        t = QueryIOTracker()
        index.candidates(clustered[0], 5, t)
        assert t.page_reads > 0

    def test_deterministic(self, clustered):
        a = C2LSHIndex(clustered, seed=4)
        b = C2LSHIndex(clustered, seed=4)
        q = clustered[7]
        assert np.array_equal(a.candidates(q, 5), b.candidates(q, 5))

    def test_index_bytes(self, clustered):
        index = C2LSHIndex(clustered, seed=0)
        assert index.index_bytes == index.n_hashes * len(clustered) * 12

    def test_validation(self, clustered):
        index = C2LSHIndex(clustered, seed=0)
        with pytest.raises(ValueError):
            index.candidates(clustered[0], 0)
        with pytest.raises(ValueError):
            C2LSHIndex(np.empty((0, 4)))


class TestE2LSHIndex:
    def test_candidates_are_plausible(self, clustered):
        index = E2LSHIndex(clustered, n_tables=8, n_bits=4, seed=0)
        q = clustered[3] + 0.05
        cands = index.candidates(q, 5)
        assert 3 in cands  # the near-identical point collides

    def test_unique_sorted_output(self, clustered):
        index = E2LSHIndex(clustered, seed=0)
        cands = index.candidates(clustered[0], 5)
        assert np.array_equal(cands, np.unique(cands))

    def test_io_charged(self, clustered):
        index = E2LSHIndex(clustered, seed=0)
        t = QueryIOTracker()
        index.candidates(clustered[0], 5, t)
        assert t.page_reads >= 1

    def test_validation(self, clustered):
        with pytest.raises(ValueError):
            E2LSHIndex(clustered, n_tables=0)
        index = E2LSHIndex(clustered, seed=0)
        with pytest.raises(ValueError):
            index.candidates(clustered[0], 0)
