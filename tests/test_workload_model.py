"""Workload models: ring-buffer windows and mergeable decayed sketches."""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload import (
    DecayedSketchWorkload,
    WindowWorkload,
    WorkloadModel,
    build_workload_model,
    workload_distance,
)


def _queries(n, d=3, seed=0):
    rng = np.random.default_rng(seed)
    return np.rint(rng.uniform(0, 50, size=(n, d)))


class TestWindowWorkload:
    def test_protocol_conformance(self):
        assert isinstance(WindowWorkload(), WorkloadModel)
        assert isinstance(DecayedSketchWorkload(), WorkloadModel)

    def test_capacity_bound_keeps_newest(self):
        window = WindowWorkload(capacity=5)
        for i in range(9):
            window.record(np.full(3, float(i)))
        assert len(window) == 5
        assert window.observations == 9
        # Oldest retained is query 4, and order is chronological.
        np.testing.assert_array_equal(window.queries()[:, 0], [4, 5, 6, 7, 8])

    def test_empty_window_yields_zero_rows(self):
        window = WindowWorkload(capacity=4)
        assert window.queries().shape == (0, 0)
        window_d = WindowWorkload(capacity=4, dim=7)
        assert window_d.queries().shape == (0, 7)
        distinct, weights = window_d.distinct()
        assert distinct.shape == (0, 7)
        assert weights.shape == (0,)

    def test_record_copies_the_query(self):
        window = WindowWorkload(capacity=3)
        q = np.array([1.0, 2.0])
        window.record(q)
        q[:] = 99.0
        np.testing.assert_array_equal(window.queries(), [[1.0, 2.0]])

    def test_queries_returns_a_copy(self):
        window = WindowWorkload(capacity=3)
        window.record([1.0, 2.0])
        out = window.queries()
        out[:] = -1.0
        np.testing.assert_array_equal(window.queries(), [[1.0, 2.0]])

    def test_batch_wraps_like_single_records(self):
        batch = _queries(23, d=4, seed=5)
        one = WindowWorkload(capacity=7)
        for q in batch:
            one.record(q)
        many = WindowWorkload(capacity=7)
        # Split unevenly so a chunk straddles the wrap point.
        many.record_batch(batch[:10])
        many.record_batch(batch[10:16])
        many.record_batch(batch[16:])
        np.testing.assert_array_equal(one.queries(), many.queries())

    def test_oversized_batch_keeps_newest_capacity_rows(self):
        batch = _queries(30, seed=6)
        window = WindowWorkload(capacity=8)
        window.record_batch(batch)
        np.testing.assert_array_equal(window.queries(), batch[-8:])

    def test_distinct_matches_np_unique(self):
        batch = _queries(40, seed=7)
        window = WindowWorkload(capacity=100)
        window.record_batch(batch)
        window.record_batch(batch[:11])  # duplicates
        expect_q, expect_w = np.unique(
            np.concatenate([batch, batch[:11]]), axis=0, return_counts=True
        )
        distinct, weights = window.distinct()
        np.testing.assert_array_equal(distinct, expect_q)
        np.testing.assert_array_equal(weights, expect_w)
        assert weights.dtype == np.int64

    def test_dimension_mismatch_raises(self):
        window = WindowWorkload(capacity=3)
        window.record([1.0, 2.0])
        with pytest.raises(ValueError, match="dimension"):
            window.record([1.0, 2.0, 3.0])

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            WindowWorkload(capacity=0)

    def test_clear_then_refill(self):
        window = WindowWorkload(capacity=4)
        window.record_batch(_queries(6, seed=1))
        window.clear()
        assert len(window) == 0
        assert window.queries().shape == (0, 3)
        window.record([9.0, 9.0, 9.0])
        np.testing.assert_array_equal(window.queries(), [[9.0, 9.0, 9.0]])

    def test_merge_concatenates_retained(self):
        a, b = WindowWorkload(capacity=4), WindowWorkload(capacity=4)
        a.record_batch(_queries(3, seed=2))
        b.record_batch(_queries(2, seed=3))
        merged = a.merge(b)
        assert len(merged) == 5
        np.testing.assert_array_equal(
            merged.queries(), np.concatenate([a.queries(), b.queries()])
        )

    def test_picklable(self):
        window = WindowWorkload(capacity=5)
        window.record_batch(_queries(8, seed=4))
        clone = pickle.loads(pickle.dumps(window))
        np.testing.assert_array_equal(clone.queries(), window.queries())


class TestDecayedSketchWorkload:
    def test_decay_prefers_recent_queries(self):
        sketch = DecayedSketchWorkload(decay=0.5)
        old, new = np.array([1.0, 1.0]), np.array([2.0, 2.0])
        sketch.record(old)
        for _ in range(4):
            sketch.record(new)
        weights = sketch.effective_weights()
        assert weights[new.tobytes()] > weights[old.tobytes()]

    def test_no_decay_counts_exactly(self):
        sketch = DecayedSketchWorkload(decay=1.0)
        q = np.array([3.0, 4.0])
        for _ in range(7):
            sketch.record(q)
        assert weights_close(sketch.effective_weights()[q.tobytes()], 7.0)

    def test_eviction_drops_lightest(self):
        sketch = DecayedSketchWorkload(decay=1.0, max_entries=3)
        for i in range(4):
            q = np.array([float(i), 0.0])
            for _ in range(i + 1):  # weight i+1
                sketch.record(q)
        assert len(sketch) == 3
        kept = sketch.queries()[:, 0]
        assert 0.0 not in kept  # the weight-1 entry was evicted

    def test_distinct_row_order_matches_np_unique(self):
        batch = _queries(30, seed=8)
        sketch = DecayedSketchWorkload(decay=1.0)
        sketch.record_batch(batch)
        expect_q = np.unique(batch, axis=0)
        np.testing.assert_array_equal(sketch.distinct()[0], expect_q)

    def test_quantization_preserves_relative_popularity(self):
        sketch = DecayedSketchWorkload(decay=1.0)
        hot, cold = np.array([1.0, 0.0]), np.array([0.0, 1.0])
        for _ in range(10):
            sketch.record(hot)
        sketch.record(cold)
        distinct, weights = sketch.distinct()
        w = {row.tobytes(): int(v) for row, v in zip(distinct, weights)}
        assert weights.min() >= 1
        ratio = w[hot.tobytes()] / w[cold.tobytes()]
        assert ratio == pytest.approx(10.0, rel=0.01)

    def test_long_stream_stays_finite(self):
        """The O(1) decay trick must rescale before float64 overflows."""
        sketch = DecayedSketchWorkload(decay=0.5, max_entries=8)
        for i in range(200):
            sketch.record(np.array([float(i % 4), 1.0]))
        weights = sketch.effective_weights()
        assert all(np.isfinite(w) for w in weights.values())
        assert max(weights.values()) < 3.0  # geometric series bound

    def test_merge_sums_effective_weights(self):
        a = DecayedSketchWorkload(decay=1.0)
        b = DecayedSketchWorkload(decay=1.0)
        q_shared = np.array([5.0, 5.0])
        a.record(q_shared)
        a.record(np.array([1.0, 0.0]))
        b.record(q_shared)
        b.record(q_shared)
        merged = a.merge(b)
        assert weights_close(
            merged.effective_weights()[q_shared.tobytes()], 3.0
        )
        assert merged.observations == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            DecayedSketchWorkload(decay=0.0)
        with pytest.raises(ValueError):
            DecayedSketchWorkload(decay=1.5)
        with pytest.raises(ValueError):
            DecayedSketchWorkload(max_entries=0)
        sketch = DecayedSketchWorkload(dim=2)
        with pytest.raises(ValueError, match="dimension"):
            sketch.record([1.0, 2.0, 3.0])

    def test_picklable(self):
        sketch = DecayedSketchWorkload(decay=0.9)
        sketch.record_batch(_queries(12, seed=9))
        clone = pickle.loads(pickle.dumps(sketch))
        assert clone.effective_weights() == sketch.effective_weights()

    @given(seed=st.integers(0, 2**10), split=st.integers(0, 24))
    @settings(max_examples=30, deadline=None)
    def test_property_merge_is_associative(self, seed, split):
        """(a ∪ b) ∪ c and a ∪ (b ∪ c) agree on effective weights."""
        rng = np.random.default_rng(seed)
        batch = np.rint(rng.uniform(0, 6, size=(24, 2)))
        cut2 = split // 2
        parts = [batch[:cut2], batch[cut2:split], batch[split:]]
        sketches = []
        for part in parts:
            s = DecayedSketchWorkload(decay=0.99)
            s.record_batch(part)
            sketches.append(s)
        a, b, c = sketches
        left = a.merge(b).merge(c)
        right = a.merge(b.merge(c))
        assert set(left.effective_weights()) == set(right.effective_weights())
        for key, weight in left.effective_weights().items():
            assert weight == pytest.approx(
                right.effective_weights()[key], rel=1e-9
            )

    @given(seed=st.integers(0, 2**10))
    @settings(max_examples=30, deadline=None)
    def test_property_merge_is_commutative(self, seed):
        rng = np.random.default_rng(seed)
        batch = np.rint(rng.uniform(0, 5, size=(16, 2)))
        a = DecayedSketchWorkload(decay=0.95)
        b = DecayedSketchWorkload(decay=0.95)
        a.record_batch(batch[:9])
        b.record_batch(batch[9:])
        ab, ba = a.merge(b), b.merge(a)
        assert set(ab.effective_weights()) == set(ba.effective_weights())
        for key, weight in ab.effective_weights().items():
            assert weight == pytest.approx(
                ba.effective_weights()[key], rel=1e-9
            )


def weights_close(a: float, b: float) -> bool:
    return abs(a - b) < 1e-9


class TestBuildWorkloadModel:
    def test_recipes(self):
        assert build_workload_model(None) is None
        window = build_workload_model({"kind": "window", "capacity": 9})
        assert isinstance(window, WindowWorkload)
        assert window.capacity == 9
        sketch = build_workload_model(
            {"kind": "sketch", "decay": 0.9, "max_entries": 5}
        )
        assert isinstance(sketch, DecayedSketchWorkload)
        assert sketch.decay == 0.9
        assert sketch.max_entries == 5
        with pytest.raises(ValueError, match="kind"):
            build_workload_model({"kind": "bogus"})


class TestWorkloadDistance:
    def test_identical_distributions_are_zero(self):
        batch = _queries(20, seed=10)
        a, b = WindowWorkload(capacity=50), WindowWorkload(capacity=50)
        a.record_batch(batch)
        b.record_batch(batch)
        assert workload_distance(a, b) == pytest.approx(0.0)

    def test_disjoint_distributions_are_one(self):
        a, b = WindowWorkload(capacity=10), WindowWorkload(capacity=10)
        a.record([1.0, 1.0])
        b.record([2.0, 2.0])
        assert workload_distance(a, b) == pytest.approx(1.0)

    def test_empty_models_are_identical(self):
        assert workload_distance(WindowWorkload(), WindowWorkload()) == 0.0

    def test_distance_is_symmetric_and_bounded(self):
        a, b = WindowWorkload(capacity=30), WindowWorkload(capacity=30)
        a.record_batch(_queries(15, seed=11))
        b.record_batch(_queries(15, seed=12))
        d = workload_distance(a, b)
        assert d == pytest.approx(workload_distance(b, a))
        assert 0.0 <= d <= 1.0

    def test_cross_model_kinds(self):
        batch = _queries(10, seed=13)
        window = WindowWorkload(capacity=20)
        sketch = DecayedSketchWorkload(decay=1.0)
        window.record_batch(batch)
        sketch.record_batch(batch)
        assert workload_distance(window, sketch) < 0.01
