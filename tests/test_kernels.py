"""Bound kernels: bit-identity, packing edge cases, and the bugfix sweep.

Four concerns share this module because they guard one invariant — the
bounds the cache hands the reduction step are *sound* and *identical*
no matter which kernel produced them:

* ``BitPackedMatrix`` round-trips at word-spill boundaries (a field
  straddling two uint64 words is exactly where a native kernel reading
  raw words would silently corrupt codes);
* the three bound kernels (decode / numpy / native) agree bit-for-bit
  on random histograms, for every encoder family;
* ``Histogram.lookup`` rejects out-of-domain values (clamping them used
  to produce a "lower bound" exceeding the true distance);
* ``kth_smallest`` refuses NaN (``np.partition`` would silently order
  NaN last and shift the pruning threshold).
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitpack import WORD_BITS, BitPackedMatrix
from repro.core.bounds import (
    batch_rectangle_bounds,
    exact_distances,
    kth_smallest,
    rectangle_bounds,
)
from repro.core.builders import build_equidepth, build_equiwidth
from repro.core.domain import ValueDomain
from repro.core.encoder import (
    ExactEncoder,
    GlobalHistogramEncoder,
    IndividualHistogramEncoder,
)
from repro.core.histogram import Histogram
from repro.core.kernels import (
    KERNEL_ENV,
    DecodeKernel,
    KernelUnavailableError,
    NativeKernel,
    TableGatherKernel,
    code_bounds,
    effective_kernel,
    native_available,
    resolve_kernel,
)
from repro.core.multidim import RTreeBucketEncoder
from repro.core.pq import PQEncoder

SEED = 20260808

NATIVE_OK, NATIVE_REASON = native_available()
needs_native = pytest.mark.skipif(
    not NATIVE_OK, reason=f"native kernel unavailable: {NATIVE_REASON}"
)


# ----------------------------------------------------------------------
# BitPackedMatrix at word boundaries
# ----------------------------------------------------------------------
class TestBitPackSpill:
    """Round-trips exactly where fields straddle uint64 words."""

    @pytest.mark.parametrize("bits", [7, 13, 63])
    def test_spill_round_trip(self, bits):
        # Enough fields that several cross a word boundary.
        n_fields = (3 * WORD_BITS) // bits + 2
        rng = np.random.default_rng(SEED + bits)
        codes = rng.integers(0, 2**bits, size=(17, n_fields), dtype=np.int64)
        store = BitPackedMatrix(17, n_fields, bits)
        store.set_rows(np.arange(17), codes)
        assert np.array_equal(store.get_rows(np.arange(17)), codes)
        # The geometry must mark at least one spilling field, or the
        # parametrization stopped exercising the boundary at all.
        _, _, spill = store.field_geometry()
        assert (spill > 0).any()

    @pytest.mark.parametrize("bits", [7, 13, 63])
    def test_spill_extremes_survive(self, bits):
        """All-ones codes (every payload bit set) round-trip unchanged."""
        n_fields = (2 * WORD_BITS) // bits + 1
        top = 2**bits - 1
        codes = np.full((3, n_fields), top, dtype=np.int64)
        codes[1] = 0
        codes[2, ::2] = 0
        store = BitPackedMatrix(3, n_fields, bits)
        store.set_rows(np.arange(3), codes)
        assert np.array_equal(store.get_rows(np.arange(3)), codes)

    @pytest.mark.parametrize(
        "n_fields,bits", [(8, 8), (4, 16), (64, 7), (2, 32)]
    )
    def test_exact_fit_rows(self, n_fields, bits):
        """Rows whose payload is a whole number of words (no slack bits)."""
        assert (n_fields * bits) % WORD_BITS == 0
        store = BitPackedMatrix(5, n_fields, bits)
        assert store.words_per_row == n_fields * bits // WORD_BITS
        rng = np.random.default_rng(SEED)
        codes = rng.integers(0, 2**bits, size=(5, n_fields), dtype=np.int64)
        store.set_rows(np.arange(5), codes)
        assert np.array_equal(store.get_rows(np.arange(5)), codes)

    def test_capacity_zero(self):
        store = BitPackedMatrix(0, 6, 13)
        assert store.nbytes == 0
        assert store.get_rows(np.empty(0, dtype=np.int64)).shape == (0, 6)
        with pytest.raises(IndexError):
            store.get_rows(np.array([0]))

    @settings(max_examples=40, deadline=None)
    @given(
        bits=st.sampled_from([7, 13, 63]),
        n_fields=st.integers(1, 40),
        data=st.data(),
    )
    def test_round_trip_property(self, bits, n_fields, data):
        rows = data.draw(st.integers(0, 6))
        codes = np.asarray(
            data.draw(
                st.lists(
                    st.lists(
                        st.integers(0, 2**bits - 1),
                        min_size=n_fields,
                        max_size=n_fields,
                    ),
                    min_size=rows,
                    max_size=rows,
                )
            ),
            dtype=np.int64,
        ).reshape(rows, n_fields)
        store = BitPackedMatrix(max(rows, 1), n_fields, bits)
        if rows:
            store.set_rows(np.arange(rows), codes)
            assert np.array_equal(store.get_rows(np.arange(rows)), codes)


# ----------------------------------------------------------------------
# Kernel equivalence over random histograms
# ----------------------------------------------------------------------
def _random_encoder(rng, kind, dim=7):
    n = 120
    points = np.rint(rng.uniform(0, 40, size=(n, dim)))
    if kind == "global":
        dom = ValueDomain.from_points(points)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 8), dim)
    elif kind == "individual":
        hists = [
            build_equiwidth(ValueDomain.from_column(points[:, j]), 4 + j % 3)
            for j in range(dim)
        ]
        enc = IndividualHistogramEncoder(hists)
    elif kind == "rtree":
        enc = RTreeBucketEncoder(points, tau=4)
    elif kind == "pq":
        enc = PQEncoder(points, n_subspaces=3, bits=3, seed=1)
    else:
        raise ValueError(kind)
    return enc, points


KERNEL_ENCODERS = ("global", "individual", "rtree", "pq")


class TestKernelEquivalence:
    @pytest.mark.parametrize("kind", KERNEL_ENCODERS)
    def test_numpy_matches_decode_bitwise(self, kind):
        rng = np.random.default_rng(SEED)
        enc, points = _random_encoder(rng, kind)
        codes = enc.encode(points)
        queries = rng.uniform(-5, 45, size=(6, points.shape[1]))
        lb_d, ub_d = code_bounds(queries, codes, enc, kernel="decode")
        lb_n, ub_n = code_bounds(queries, codes, enc, kernel="numpy")
        assert np.array_equal(lb_d, lb_n), kind
        assert np.array_equal(ub_d, ub_n), kind

    @pytest.mark.parametrize("kind", KERNEL_ENCODERS)
    def test_packed_matches_unpacked(self, kind):
        """packed_bounds (the cache hot path) equals decode bit-for-bit."""
        rng = np.random.default_rng(SEED + 1)
        enc, points = _random_encoder(rng, kind)
        codes = enc.encode(points)
        m = len(codes)
        store = BitPackedMatrix(m, enc.n_fields, enc.bits)
        store.set_rows(np.arange(m), codes)
        slots = rng.permutation(m)[: m // 2]
        queries = rng.uniform(-5, 45, size=(4, points.shape[1]))
        want = DecodeKernel().bounds(queries, codes[slots], enc)
        for kernel in self._kernels(enc):
            got = kernel.packed_bounds(queries, store, slots, enc)
            assert np.array_equal(want[0], got[0]), (kind, kernel.name)
            assert np.array_equal(want[1], got[1]), (kind, kernel.name)

    @staticmethod
    def _kernels(enc):
        for name in ("decode", "numpy", "native"):
            if name == "native" and not NATIVE_OK:
                continue
            kern = effective_kernel(resolve_kernel(name), enc)
            yield kern

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**31 - 1), n_buckets=st.integers(2, 20))
    def test_random_histograms_property(self, seed, n_buckets):
        """Decode vs table-gather on arbitrary gap-y histograms."""
        rng = np.random.default_rng(seed)
        dim = int(rng.integers(1, 9))
        edges = np.sort(rng.uniform(-100, 100, size=2 * n_buckets))
        hist = Histogram(lowers=edges[0::2], uppers=edges[1::2])
        enc = GlobalHistogramEncoder(hist, dim)
        codes = rng.integers(0, n_buckets, size=(30, dim), dtype=np.int64)
        queries = rng.uniform(-120, 120, size=(3, dim))
        lb_d, ub_d = DecodeKernel().bounds(queries, codes, enc)
        lb_t, ub_t = TableGatherKernel().bounds(queries, codes, enc)
        assert np.array_equal(lb_d, lb_t)
        assert np.array_equal(ub_d, ub_t)

    def test_bounds_sound_vs_exact(self):
        """lb <= dist <= ub for in-domain points, every kernel."""
        rng = np.random.default_rng(SEED + 2)
        enc, points = _random_encoder(rng, "global")
        codes = enc.encode(points)
        queries = rng.uniform(0, 40, size=(5, points.shape[1]))
        for kernel in ("decode", "numpy"):
            lb, ub = code_bounds(queries, codes, enc, kernel=kernel)
            for i, q in enumerate(queries):
                dist = exact_distances(q, points)
                assert (lb[i] <= dist + 1e-9).all(), kernel
                assert (ub[i] >= dist - 1e-9).all(), kernel

    def test_empty_candidate_set(self):
        rng = np.random.default_rng(SEED)
        enc, points = _random_encoder(rng, "global")
        queries = rng.uniform(0, 40, size=(2, points.shape[1]))
        empty = np.empty((0, enc.n_fields), dtype=np.int64)
        for name in ("decode", "numpy"):
            lb, ub = code_bounds(queries, empty, enc, kernel=name)
            assert lb.shape == ub.shape == (2, 0)


# ----------------------------------------------------------------------
# Kernel resolution semantics
# ----------------------------------------------------------------------
class TestResolution:
    def test_auto_is_numpy(self, monkeypatch):
        monkeypatch.delenv(KERNEL_ENV, raising=False)
        assert resolve_kernel(None).name == "numpy"
        assert resolve_kernel("auto").name == "numpy"

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "decode")
        assert resolve_kernel(None).name == "decode"
        # An explicit argument wins over the environment.
        assert resolve_kernel("numpy").name == "numpy"

    def test_explicit_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            resolve_kernel("simd")

    def test_env_unknown_degrades_with_warning(self, monkeypatch):
        monkeypatch.setenv(KERNEL_ENV, "simd")
        with pytest.warns(RuntimeWarning, match="simd"):
            assert resolve_kernel(None).name == "numpy"

    def test_unsupported_encoder_falls_back_to_decode(self):
        rng = np.random.default_rng(SEED)
        enc, _ = _random_encoder(rng, "pq")
        assert effective_kernel(resolve_kernel("numpy"), enc).name == "decode"
        exact = ExactEncoder(4, 16)
        assert effective_kernel(resolve_kernel("numpy"), exact).name == "decode"

    @needs_native
    def test_native_resolves(self):
        kern = resolve_kernel("native")
        assert isinstance(kern, NativeKernel)
        assert kern.name == "native"

    def test_native_explicit_raises_when_unavailable(self):
        if NATIVE_OK:
            pytest.skip("native kernel is available here")
        with pytest.raises(KernelUnavailableError):
            resolve_kernel("native")


@needs_native
class TestNativeKernel:
    def test_matches_numpy_on_all_summation_regimes(self):
        """d < 8, 8 <= d <= 128 and d > 128 hit distinct pairwise paths."""
        rng = np.random.default_rng(SEED + 3)
        table = TableGatherKernel()
        native = resolve_kernel("native")
        for dim, bits in ((3, 7), (24, 5), (150, 8), (301, 6)):
            n_buckets = 2**bits if bits <= 4 else 19
            edges = np.sort(rng.uniform(-50, 50, size=2 * n_buckets))
            hist = Histogram(lowers=edges[0::2], uppers=edges[1::2])
            enc = GlobalHistogramEncoder(hist, dim)
            enc.bits = bits  # widen the packed field past ceil(log2 B)
            codes = rng.integers(0, n_buckets, size=(21, dim), dtype=np.int64)
            store = BitPackedMatrix(21, dim, bits)
            store.set_rows(np.arange(21), codes)
            queries = rng.normal(0, 30, size=(3, dim))
            want = table.packed_bounds(queries, store, np.arange(21), enc)
            got = native.packed_bounds(queries, store, np.arange(21), enc)
            assert np.array_equal(want[0], got[0]), (dim, bits)
            assert np.array_equal(want[1], got[1]), (dim, bits)

    def test_out_of_range_code_raises(self):
        native = resolve_kernel("native")
        hist = Histogram(lowers=np.array([0.0, 2.0]), uppers=np.array([1.0, 3.0]))
        enc = GlobalHistogramEncoder(hist, 4)
        store = BitPackedMatrix(1, 4, 3)
        store.set_rows(np.array([0]), np.array([[7, 0, 1, 0]]))
        with pytest.raises(IndexError):
            native.packed_bounds(
                np.zeros((1, 4)), store, np.array([0]), enc
            )

    def test_self_check_passed(self):
        ok, reason = native_available()
        assert ok and reason is None


# ----------------------------------------------------------------------
# Satellite bugfix 1: out-of-domain encodes are rejected
# ----------------------------------------------------------------------
class TestLookupSoundness:
    def _hist(self):
        dom = ValueDomain(
            np.array([0.0, 1.0, 4.0, 5.0, 9.0, 10.0]), np.ones(6, dtype=np.int64)
        )
        return Histogram.from_splits(dom, np.array([0, 2, 4]))

    def test_out_of_domain_raises(self):
        # Pre-fix, lookup() silently clamped 999.0 into the last bucket —
        # this assertion fails on that code.
        hist = self._hist()
        for bad in (999.0, -999.0):
            with pytest.raises(ValueError, match="outside every histogram"):
                hist.lookup(np.array([bad]))

    def test_gap_value_raises(self):
        """Values in inter-bucket gaps are just as unsound as outliers."""
        hist = self._hist()
        assert not hist.covers(np.array([2.5]))[0]
        with pytest.raises(ValueError, match="outside every histogram"):
            hist.lookup(np.array([2.5]))

    def test_clamped_code_would_break_lower_bound(self):
        """The soundness violation the strict check prevents.

        Encoding 999.0 via the old clamping path yields a rectangle that
        excludes the point, and the derived "lower bound" exceeds the
        true distance — exactly the condition that makes bound-based
        pruning drop true neighbors.
        """
        hist = self._hist()
        dim = 3
        enc = GlobalHistogramEncoder(hist, dim)
        point = np.array([[999.0, 5.0, 9.0]])
        codes = hist.lookup(point, strict=False)  # the pre-fix behavior
        lo, hi = enc.rectangles(codes)
        query = np.array([999.0, 5.0, 9.0])  # the point itself: dist 0
        lb, _ = rectangle_bounds(query, lo, hi)
        exact = exact_distances(query, point)
        assert lb[0] > exact[0], "clamped code must exhibit the unsound lb"
        with pytest.raises(ValueError):
            enc.encode(point)  # the fix: refuse to produce that code

    def test_domain_members_encode_strictly(self):
        hist = self._hist()
        values = np.array([0.0, 1.0, 4.0, 5.0, 9.0, 10.0])
        codes = hist.lookup(values)
        lo, hi = hist.decode_bounds(codes)
        assert (lo <= values).all() and (values <= hi).all()

    def test_covers_still_reports_instead_of_raising(self):
        hist = self._hist()
        mask = hist.covers(np.array([5.0, 999.0, 2.5]))
        assert mask.tolist() == [True, False, False]


# ----------------------------------------------------------------------
# Satellite bugfix 2: kth_smallest refuses NaN
# ----------------------------------------------------------------------
class TestKthSmallestNaN:
    def test_nan_raises_when_enough_values(self):
        values = np.array([3.0, np.nan, 1.0, 2.0])
        with pytest.raises(ValueError, match="NaN"):
            kth_smallest(values, 2)

    def test_nan_raises_in_short_regime(self):
        # Pre-fix the size < k branch returned +inf without looking at
        # the values, so a NaN slipped through silently.
        values = np.array([np.nan, 1.0])
        with pytest.raises(ValueError, match="NaN"):
            kth_smallest(values, 5)

    def test_nan_would_have_shifted_threshold(self):
        """Documents the np.partition hazard the guard closes."""
        clean = np.array([5.0, 1.0, 3.0])
        assert kth_smallest(clean, 3) == 5.0
        poisoned = np.array([5.0, np.nan, 3.0])
        # np.partition orders NaN last: the "3rd smallest" becomes NaN,
        # and every lb <= NaN comparison is False — pruning collapses.
        assert np.isnan(np.partition(poisoned, 2)[2])
        with pytest.raises(ValueError):
            kth_smallest(poisoned, 3)

    def test_clean_paths_unchanged(self):
        values = np.array([4.0, 0.5, 2.0, 9.0])
        assert kth_smallest(values, 1) == 0.5
        assert kth_smallest(values, 4) == 9.0
        assert kth_smallest(values, 5) == float("inf")


# ----------------------------------------------------------------------
# Satellite bugfix 3: measure_m1 routes through the kernel path
# ----------------------------------------------------------------------
class TestMeasureM1:
    @pytest.fixture(scope="class")
    def context(self):
        from repro.data.datasets import Dataset
        from repro.data.workload import QueryLog
        from repro.eval.methods import WorkloadContext

        rng = np.random.default_rng(SEED)
        points = np.rint(rng.uniform(0, 60, size=(160, 6)))
        pool = points[rng.permutation(160)[:10]].copy()
        log = QueryLog(
            pool,
            workload_idx=rng.integers(0, 10, size=30),
            test_idx=np.arange(4),
        )
        dataset = Dataset(
            name="m1-kernel", points=points, value_bits=6, query_log=log
        )
        return WorkloadContext.prepare(dataset, index_name="linear", k=4)

    def _old_loop(self, encoder, context, k):
        """The historical per-query implementation, verbatim."""
        from repro.core.bounds import rectangle_bounds
        from repro.core.reduction import reduce_candidates

        points = context.dataset.points
        total = 0.0
        for query, weight, cands in zip(
            context.distinct_queries,
            context.query_weights,
            context.candidate_sets,
        ):
            if cands.size == 0:
                continue
            codes = encoder.encode(points[cands])
            lo, hi = encoder.rectangles(codes)
            lb, ub = rectangle_bounds(query, lo, hi)
            outcome = reduce_candidates(
                cands, np.ones(len(cands), dtype=bool), lb, ub, k
            )
            total += weight * outcome.c_refine
        return float(total)

    @pytest.mark.parametrize("kernel", ["decode", "numpy"])
    def test_bit_identical_to_old_loop(self, context, kernel):
        from repro.eval.runner import measure_m1

        dom = ValueDomain.from_points(context.dataset.points)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 16), 6)
        want = self._old_loop(enc, context, k=4)
        got = measure_m1(enc, context, k=4, kernel=kernel)
        assert got == want  # exact float equality, not approx


# ----------------------------------------------------------------------
# Compiled-artifact cache
# ----------------------------------------------------------------------
@needs_native
def test_kernel_cache_dir_override(tmp_path, monkeypatch):
    """REPRO_KERNEL_CACHE redirects the .so cache (fresh compile works)."""
    import repro.core.kernels as kernels

    monkeypatch.setenv("REPRO_KERNEL_CACHE", str(tmp_path))
    lib = kernels._compile_native()
    assert lib.repro_packed_bounds is not None
    assert any(p.suffix == ".so" for p in tmp_path.iterdir())
    # Second call reuses the cached artifact (no error, same directory).
    kernels._compile_native()
    assert os.environ["REPRO_KERNEL_CACHE"] == str(tmp_path)
