"""Churn differential suite: mutations are invisible to answer bits.

The guarantee, per (index family x cache method) cell and per bound
kernel: interleaving inserts and deletes with queries changes **nothing
observable** relative to a from-scratch rebuild over the mutated
dataset.  At every fence (mutate -> revalidate) the mutated pipeline and
a reference twin — same trained geometry, indexes and caches built fresh
from the post-mutation rows — return bit-identical ids, distances and
``exact_mask``, for plain and attribute-filtered kNN alike.

Three extra legs extend the chain through the outer layers:

* **sharded** — a ``ShardedEngine`` absorbing the same mutation script
  through ``mutate()`` matches the unsharded mutable pipeline;
* **snapshot** — ``save_churn_state`` / ``restore_pipeline`` replays the
  delta deterministically (the persisted pipeline answers identically);
* **mid-epoch** — between fences the answers stay exact under the
  tombstone mask (compared against brute force, which needs no cache-
  content equivalence).

Each cell rebuilds from scratch per kernel; all randomness derives from
``SEED``.  LRU cells are intentionally absent: their warm state *is*
their content, so bit-identity to a cold rebuild is not a property they
promise (the unit suite covers their masking separately).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import native_available
from repro.eval.methods import WorkloadContext
from repro.mutate import (
    MutablePipeline,
    load_churn_state,
    parse_predicate,
    reference_twin,
    restore_pipeline,
    save_churn_state,
)
from repro.spec.build import build_pipeline, spec_from_kwargs
from repro.spec.registry import TREE_INDEX_NAMES

SEED = 20260808
K = 5
TAU = 8
CACHE_BYTES = 1 << 14

NATIVE_OK, NATIVE_REASON = native_available()
KERNELS = ("decode", "numpy") + (("native",) if NATIVE_OK else ())

#: >= 6 index x cache cells (acceptance criterion), spanning native-
#: insert families, every cache family, and both tree strategies
#: (idistance relayout-native, vptree delta overlay).
CELLS = (
    ("linear", "HC-O"),
    ("vafile", "HC-O"),
    ("e2lsh", "HC-D"),
    ("c2lsh", "NO-CACHE"),
    ("multiprobe", "EXACT"),
    ("idistance", "HC-O"),
    ("vptree", "EXACT"),
)

PREDICATE = parse_predicate("label<=6")


def build_mutable(dataset, index_name, method, kernel) -> MutablePipeline:
    spec = spec_from_kwargs(
        dataset=dataset,
        method=method,
        tau=TAU,
        cache_bytes=CACHE_BYTES,
        index_name=index_name,
        k=K,
        seed=SEED,
        kernel=kernel,
    )
    inner = build_pipeline(spec, dataset=dataset)
    if index_name in TREE_INDEX_NAMES:
        pipeline = MutablePipeline(
            inner, workload=dataset.query_log.workload, k=K
        )
    else:
        pipeline = MutablePipeline(inner)
    # Deterministic demo attribute for filtered search: label = id mod 10,
    # carried through inserts below.
    pipeline.data.attributes["label"] = (
        np.arange(pipeline.data.num_total, dtype=np.int64) % 10
    )
    return pipeline


def sample_inserts(pipeline, rng, n):
    """Encodable insert rows: resampled base rows + noise, snapped."""
    base = pipeline.data.points[: pipeline.data.base_count]
    picks = rng.integers(0, len(base), size=n)
    rows = pipeline.quantize(
        base[picks] + rng.normal(scale=base.std(axis=0), size=(n, base.shape[1]))
    )
    return rows, {"label": picks.astype(np.int64) % 10}


def assert_bit_identical(got, want, where):
    assert np.array_equal(got.ids, want.ids), where
    assert np.array_equal(got.distances, want.distances), where
    assert np.array_equal(got.exact_mask, want.exact_mask), where


def check_fence(pipeline, queries, where):
    """Bit-identity against a from-scratch rebuild, plain and filtered."""
    twin = reference_twin(pipeline)
    for predicate in (None, PREDICATE):
        got = pipeline.search_many(queries, K, predicate=predicate)
        want = twin.search_many(queries, K, predicate=predicate)
        for qi, (g, w) in enumerate(zip(got, want)):
            assert_bit_identical(
                g, w, f"{where} predicate={predicate is not None} q{qi}"
            )


def assert_exact_topk(pipeline, query, where):
    """Mid-epoch sanity: the masked answer equals brute force."""
    result = pipeline.search(query, K)
    d = np.linalg.norm(pipeline.data.points - query, axis=1)
    d[~pipeline.data.live] = np.inf
    order = np.lexsort((np.arange(len(d)), d))[:K]
    assert result.ids.tolist() == order.tolist(), where
    assert np.allclose(result.distances, d[order]), where


@pytest.mark.parametrize("kernel", KERNELS)
@pytest.mark.parametrize(
    "index_name,method", CELLS, ids=[f"{i}~{m}" for i, m in CELLS]
)
def test_churn_bit_identical_to_rebuild(
    micro_dataset, index_name, method, kernel
):
    rng = np.random.default_rng(SEED)
    pipeline = build_mutable(micro_dataset, index_name, method, kernel)
    queries = micro_dataset.query_log.test
    cell = f"{index_name}~{method}~{kernel}"

    # Fence 0: no mutations yet — the twin harness itself must agree.
    pipeline.revalidate()
    check_fence(pipeline, queries, f"{cell} fence0")

    # Fence 1: pure inserts.
    rows, attrs = sample_inserts(pipeline, rng, 7)
    new_ids = pipeline.insert(rows, attributes=attrs)
    assert new_ids.tolist() == list(
        range(len(micro_dataset.points), len(micro_dataset.points) + 7)
    )
    assert_exact_topk(pipeline, queries[0], f"{cell} mid-epoch1")
    pipeline.revalidate()
    check_fence(pipeline, queries, f"{cell} fence1")

    # Fence 2: pure deletes, straddling base and append segments.
    live = pipeline.data.live_ids()
    victims = np.concatenate(
        [rng.choice(live[live < pipeline.data.base_count], 4, replace=False),
         new_ids[:2]]
    )
    assert len(pipeline.delete(victims)) == 6
    assert_exact_topk(pipeline, queries[1], f"{cell} mid-epoch2")
    pipeline.revalidate()
    check_fence(pipeline, queries, f"{cell} fence2")

    # Fence 3: interleaved insert + delete in one epoch.
    rows, attrs = sample_inserts(pipeline, rng, 4)
    added = pipeline.insert(rows, attributes=attrs)
    live = pipeline.data.live_ids()
    pipeline.delete(
        np.concatenate([added[:1], rng.choice(live[:-4], 2, replace=False)])
    )
    pipeline.revalidate()
    check_fence(pipeline, queries, f"{cell} fence3")

    assert pipeline.counters.mutations_applied_total == 7 + 6 + 4 + 3
    # Deleted ids never resurface, filtered answers respect the predicate.
    final = pipeline.search_many(queries, K, predicate=PREDICATE)
    labels = pipeline.data.attributes["label"]
    for result in final:
        assert pipeline.data.live[result.ids].all()
        assert (labels[result.ids] <= 6).all()


@pytest.mark.parametrize("kernel", ("decode", "numpy"))
def test_churn_snapshot_roundtrip(micro_dataset, tmp_path, kernel):
    """save_churn_state -> restore_pipeline reproduces answer bits."""
    rng = np.random.default_rng(SEED + 1)
    pipeline = build_mutable(micro_dataset, "vafile", "HC-O", kernel)
    rows, attrs = sample_inserts(pipeline, rng, 6)
    pipeline.insert(rows, attributes=attrs)
    pipeline.delete(rng.choice(pipeline.data.live_ids(), 5, replace=False))
    pipeline.revalidate()

    path = save_churn_state(pipeline, tmp_path / "churn")
    state = load_churn_state(path)
    restored = restore_pipeline(
        state,
        lambda base: build_mutable(micro_dataset, "vafile", "HC-O", kernel),
    )
    queries = micro_dataset.query_log.test
    for predicate in (None, PREDICATE):
        got = restored.search_many(queries, K, predicate=predicate)
        want = pipeline.search_many(queries, K, predicate=predicate)
        for qi, (g, w) in enumerate(zip(got, want)):
            assert_bit_identical(g, w, f"snapshot {kernel} q{qi}")


def test_churn_sharded_matches_unsharded(micro_dataset):
    """The sharded engine absorbs the same script to the same bits."""
    from repro.shard.engine import ShardedEngine
    from repro.shard.spec import ShardSpec

    points = micro_dataset.points
    n = len(points)
    rng = np.random.default_rng(SEED + 2)

    flat = build_mutable(micro_dataset, "linear", "NO-CACHE", "numpy")
    rows, attrs = sample_inserts(flat, rng, 9)
    victims = rng.choice(n, 7, replace=False)

    bounds = np.linspace(0, n, 4, dtype=np.int64)
    specs = [
        ShardSpec(
            shard_id=s,
            member_ids=np.arange(bounds[s], bounds[s + 1], dtype=np.int64),
            points=points[bounds[s] : bounds[s + 1]],
            index_name="linear",
            cache_spec={"kind": "none"},
        )
        for s in range(3)
    ]
    with ShardedEngine(specs) as engine:
        new_ids = engine.mutate(insert_points=rows, delete_ids=victims)
        flat_ids = flat.insert(rows, attributes=attrs)
        flat.delete(victims)
        flat.revalidate()
        assert np.array_equal(new_ids, flat_ids)
        for qi, query in enumerate(micro_dataset.query_log.test):
            got = engine.search(query, K)
            want = flat.search(query, K)
            assert_bit_identical(got, want, f"sharded q{qi}")


def test_twin_is_true_rebuild_not_identity(micro_dataset):
    """Guard the harness: the twin is built fresh from mutated rows.

    A twin that secretly shared the mutated pipeline's index or cache
    would make every fence assertion vacuous.
    """
    pipeline = build_mutable(micro_dataset, "linear", "HC-O", "numpy")
    pipeline.revalidate()
    twin = reference_twin(pipeline)
    assert twin.engine is not pipeline.engine
    assert twin.engine.cache is not pipeline.engine.cache
    # The twin sees the same live rows...
    assert np.array_equal(twin.engine.live_mask, pipeline.data.live)
    # ...but holds its own copies of the trained geometry's output.
    got = twin.search_many(micro_dataset.query_log.test[:3], K)
    want = pipeline.search_many(micro_dataset.query_log.test[:3], K)
    for g, w in zip(got, want):
        assert_bit_identical(g, w, "twin")
