"""The audit utilities — and a whole-framework audit over every encoder."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth, build_equiwidth, build_knn_optimal
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder, IndividualHistogramEncoder
from repro.core.histogram import Histogram
from repro.core.multidim import RTreeBucketEncoder
from repro.core.pq import PQEncoder
from repro.core.validation import (
    assert_healthy,
    audit_bounds,
    audit_encoder,
    audit_histogram,
)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(29)
    centers = rng.uniform(0, 250, size=(4, 10))
    return np.rint(
        np.clip(
            np.concatenate([c + rng.normal(scale=9, size=(100, 10)) for c in centers]),
            0, 255,
        )
    )


def _all_encoders(points):
    dom = ValueDomain.from_points(points)
    fprime = dom.counts.astype(float)
    per_dim = [
        build_equidepth(ValueDomain.from_column(points[:, j]), 8)
        for j in range(points.shape[1])
    ]
    return {
        "HC-W": GlobalHistogramEncoder(build_equiwidth(dom, 16), 10),
        "HC-D": GlobalHistogramEncoder(build_equidepth(dom, 16), 10),
        "HC-O": GlobalHistogramEncoder(build_knn_optimal(dom, fprime, 16), 10),
        "iHC-D": IndividualHistogramEncoder(per_dim),
        "mHC-R": RTreeBucketEncoder(points, tau=4),
        "PQ": PQEncoder(points, n_subspaces=5, bits=4),
    }


class TestAuditHistogram:
    def test_healthy(self, points):
        dom = ValueDomain.from_points(points)
        assert audit_histogram(build_equidepth(dom, 8), dom) == []

    def test_detects_bad_code_length(self):
        dom = ValueDomain(np.array([0.0, 1.0, 2.0]), np.array([1, 1, 1]))
        hist = Histogram.identity(dom)
        object.__setattr__(hist, "lowers", hist.lowers)  # untouched; healthy
        assert audit_histogram(hist, dom) == []

    def test_detects_uncovered_values(self):
        dom = ValueDomain(np.array([0.0, 5.0, 10.0]), np.array([1, 1, 1]))
        hist = Histogram(np.array([0.0, 8.0]), np.array([2.0, 10.0]))
        problems = audit_histogram(hist, dom)
        assert any("outside" in p for p in problems)


class TestAuditEncoders:
    @pytest.mark.parametrize(
        "name", ["HC-W", "HC-D", "HC-O", "iHC-D", "mHC-R", "PQ"]
    )
    def test_every_encoder_passes_the_framework_contract(self, points, name):
        encoder = _all_encoders(points)[name]
        assert_healthy(audit_encoder(encoder, points))
        queries = points[::40] + 0.3
        assert_healthy(audit_bounds(encoder, points, queries))

    def test_detects_broken_encoder(self, points):
        class Broken(GlobalHistogramEncoder):
            def rectangles(self, codes):
                lo, hi = super().rectangles(codes)
                return lo + 50.0, hi + 50.0  # shifted: points fall outside

        dom = ValueDomain.from_points(points)
        broken = Broken(build_equidepth(dom, 8), 10)
        problems = audit_encoder(broken, points)
        assert problems
        with pytest.raises(AssertionError):
            assert_healthy(problems)

    def test_assert_healthy_passes_empty(self):
        assert_healthy([])
