"""Unit tests for the mutation layer and its serve/spec/obs satellites.

Covers the pieces around the churn differential suite
(``test_mutate_differential.py``):

* ``MutableDataset`` — append segment, tombstones, state round-trip;
* cache coherence — delete-then-re-insert must not double-charge
  ``used_bytes``;
* ``MutationAdvisor`` — the patch-vs-rebuild decision rules;
* ``Predicate`` — parsing and masking;
* the ``Server`` mutation fence — no micro-batch straddles a mutation's
  visibility boundary;
* the open-loop generator's churn interleaving;
* ``SpecError`` for shard+replica specs (typed, names the sections and a
  workaround) and the CLI rendering of it;
* ``ShardedEngine.mutate`` routing;
* churn-delta artifacts (publish-then-swap) and the serve summary's
  mutation block.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import ApproximateCache, CachePolicy
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.eval.methods import build_caching_pipeline
from repro.mutate import (
    MutableDataset,
    MutablePipeline,
    MutationAdvisor,
    parse_predicate,
    snap_to_domain,
)
from repro.mutate.pipeline import MutationCounters
from repro.obs.registry import MetricsRegistry


# ----------------------------------------------------------------------
# MutableDataset
# ----------------------------------------------------------------------
def test_mutable_dataset_append_delete_roundtrip():
    data = MutableDataset(
        np.arange(12, dtype=np.float64).reshape(4, 3),
        attributes={"label": np.array([0, 1, 2, 3])},
    )
    new_ids = data.append(
        np.ones((2, 3)), attributes={"label": np.array([7, 8])}
    )
    assert new_ids.tolist() == [4, 5]
    assert data.base_count == 4 and data.num_total == 6

    was_live = data.tombstone(np.array([1, 4, 1]))
    assert sorted(set(was_live.tolist())) == [1, 4]
    assert data.num_live == 4
    # Tombstoning again reports nothing newly dead.
    assert data.tombstone(np.array([1])).size == 0

    restored = MutableDataset.from_state(data.to_state())
    assert np.array_equal(restored.points, data.points)
    assert np.array_equal(restored.live, data.live)
    assert np.array_equal(restored.attributes["label"], data.attributes["label"])
    assert restored.base_count == data.base_count


def test_mutable_dataset_rejects_bad_shapes():
    data = MutableDataset(np.zeros((3, 2)))
    with pytest.raises(ValueError):
        data.append(np.zeros((1, 5)))
    with pytest.raises(IndexError):
        data.tombstone(np.array([9]))
    data.tombstone(np.array([0]))
    with pytest.raises(IndexError):
        data.update(np.array([0]), np.zeros((1, 2)))


def test_snap_to_domain_snaps_to_nearest_member():
    domain = np.array([2.0, 10.0, 11.0])
    points = np.array([[-5.0, 5.9], [6.1, 10.4], [99.0, 10.6]])
    snapped = snap_to_domain(points, domain)
    assert snapped.tolist() == [[2.0, 2.0], [10.0, 10.0], [11.0, 11.0]]
    # Single-valued domains collapse everything onto the one member.
    assert snap_to_domain(np.array([[0.0, 9.0]]), np.array([4.0])).tolist() == [
        [4.0, 4.0]
    ]


# ----------------------------------------------------------------------
# Cache coherence: no double-charged capacity on delete + re-insert
# ----------------------------------------------------------------------
def test_approximate_cache_delete_reinsert_does_not_double_charge(
    micro_points,
):
    domain = ValueDomain.from_points(micro_points)
    encoder = GlobalHistogramEncoder(
        build_equidepth(domain, 16), micro_points.shape[1]
    )
    cache = ApproximateCache(
        encoder, 1 << 10, len(micro_points), policy=CachePolicy.HFF
    )
    ids = np.arange(cache.max_items, dtype=np.int64)
    cache.populate(ids, micro_points[ids])
    used = cache.used_bytes
    assert used > 0

    victim = ids[:3]
    for _ in range(5):
        freed = cache.invalidate(victim)
        assert freed == len(victim)
        cache.populate(victim, micro_points[victim])
        assert cache.used_bytes == used, (
            "delete-then-re-insert of the same ids must not change "
            "used_bytes"
        )
    # Invalidating a missing id frees nothing and charges nothing.
    cache.invalidate(victim)
    cache.invalidate(victim)
    cache.populate(victim, micro_points[victim])
    assert cache.used_bytes == used


# ----------------------------------------------------------------------
# Advisor
# ----------------------------------------------------------------------
def test_advisor_patches_small_batches_and_escalates_on_fraction():
    advisor = MutationAdvisor(mutation_threshold=0.25)
    advisor.record(10)
    decision = advisor.decide(n_live=1000)
    assert decision.action == "patch"
    assert decision.patch_cost < decision.rebuild_cost

    advisor.record(400)
    decision = advisor.decide(n_live=1000)
    assert decision.action == "rebuild"
    assert decision.mutated_fraction > 0.25

    advisor.note_trained()
    assert advisor.decide(n_live=1000).action == "patch"


def test_advisor_escalates_on_workload_drift():
    rng = np.random.default_rng(5)
    baseline = rng.normal(size=(64, 4)).round(1)
    advisor = MutationAdvisor(baseline_workload=baseline, drift_threshold=0.35)
    advisor.record(1)
    same = advisor.decide(n_live=500, recent_workload=baseline)
    assert same.action == "patch"
    shifted = advisor.decide(
        n_live=500, recent_workload=baseline + 100.0
    )
    assert shifted.action == "rebuild"
    assert shifted.drift_distance > 0.35
    assert "drift" in shifted.reason


def test_mutation_counters_mirror_into_registry():
    registry = MetricsRegistry()
    counters = MutationCounters(metrics=registry)
    counters.applied(3)
    counters.patched(2)
    counters.rebuilt()
    assert registry.value("mutations_applied_total") == 3
    assert registry.value("cache_patched_total") == 2
    assert registry.value("rebuilds_triggered_total") == 1


# ----------------------------------------------------------------------
# Predicates
# ----------------------------------------------------------------------
def test_parse_predicate_and_mask():
    pred = parse_predicate("label <= 3")
    assert (pred.field, pred.op, pred.value) == ("label", "<=", 3.0)
    mask = pred.mask({"label": np.array([1, 5, 3, 4])}, 4)
    assert mask.tolist() == [True, False, True, False]
    with pytest.raises(ValueError):
        parse_predicate("no-operator-here")
    with pytest.raises(KeyError):
        pred.mask({"other": np.zeros(4)}, 4)


# ----------------------------------------------------------------------
# Serve: mutation fence
# ----------------------------------------------------------------------
def _mutable_pipeline(micro_dataset, method="EXACT", index_name="linear", k=3):
    inner = build_caching_pipeline(
        micro_dataset,
        method=method,
        tau=8,
        cache_bytes=1 << 14,
        index_name=index_name,
        k=k,
    )
    return MutablePipeline(inner)


def test_server_mutation_fence_splits_batches(micro_dataset):
    from repro.serve import ManualClock, ServeConfig, Server

    pipeline = _mutable_pipeline(micro_dataset)
    victim = int(
        pipeline.engine.search(micro_dataset.points[0], 1).ids[0]
    )
    registry = MetricsRegistry()
    with Server(
        pipeline,
        config=ServeConfig(max_batch=32, max_wait_us=1e7),
        default_k=3,
        clock=ManualClock(),
        metrics=registry,
    ) as server:
        before = [
            server.submit(micro_dataset.points[0]),
            server.submit(micro_dataset.points[1]),
        ]
        fence = server.submit_mutation(
            lambda: pipeline.delete(np.array([victim]))
        )
        after = [
            server.submit(micro_dataset.points[0]),
            server.submit(micro_dataset.points[2]),
        ]
        server.drain()

    # The fence split what would otherwise be one 4-query flush.
    assert [t.response.batch_size for t in before] == [2, 2]
    assert [t.response.batch_size for t in after] == [2, 2]
    assert fence.response.ok and fence.response.result is None
    # Pre-fence answers see the victim; post-fence answers cannot.
    assert victim in before[0].response.result.ids.tolist()
    assert victim not in after[0].response.result.ids.tolist()
    assert registry.value("serve_mutations_total", tier="default") == 1


def test_server_mutation_requires_callable_and_no_pool(micro_dataset):
    from repro.serve import Server

    pipeline = _mutable_pipeline(micro_dataset)
    with Server(pipeline, default_k=3) as server:
        with pytest.raises(TypeError):
            server.submit_mutation("not callable")


def test_open_loop_interleaves_churn(micro_dataset):
    from repro.serve import ManualClock, Server, run_open_loop

    pipeline = _mutable_pipeline(micro_dataset)
    applied = []

    def mutator():
        def apply():
            rows = pipeline.data.points[:1]
            applied.append(pipeline.insert(rows))

        return apply

    with Server(pipeline, default_k=3, clock=ManualClock()) as server:
        report = run_open_loop(
            server,
            micro_dataset.query_log.test[:10],
            k=3,
            mutator=mutator,
            churn_rate=0.5,
        )
    assert report.served == 10
    assert report.mutations == 5
    assert len(applied) == 5
    assert report.to_dict()["mutations"] == 5

    with Server(pipeline, default_k=3) as server:
        with pytest.raises(ValueError):
            run_open_loop(
                server, micro_dataset.query_log.test[:2], churn_rate=0.5
            )


# ----------------------------------------------------------------------
# SpecError (shard + replica) and its CLI rendering
# ----------------------------------------------------------------------
def test_server_from_spec_shard_plus_replica_is_typed(tiny_dataset):
    import dataclasses

    from repro.serve import server_from_spec
    from repro.spec import SpecError
    from repro.spec.build import spec_from_kwargs
    from repro.spec.sections import ReplicaSection, ShardSection

    spec = spec_from_kwargs(
        dataset=tiny_dataset, method="HC-O", tau=8, cache_bytes=1 << 14,
        index_name="linear", k=5,
    )
    spec = dataclasses.replace(
        spec,
        shard=ShardSection(n_shards=2),
        replica=ReplicaSection(enabled=True, n_replicas=2),
    )
    with pytest.raises(SpecError) as excinfo:
        server_from_spec(spec, dataset=tiny_dataset)
    message = str(excinfo.value)
    assert "[shard]" in message and "[replica]" in message
    assert "Workaround" in message
    assert excinfo.value.sections == ("shard", "replica")
    # Typed but still a ValueError, so existing handlers keep working.
    assert isinstance(excinfo.value, ValueError)


def test_cli_serve_shard_plus_replica_message(capsys):
    from repro.cli import main

    rc = main(
        ["serve", "--dataset", "tiny", "--shards", "2", "--replicas", "2"]
    )
    captured = capsys.readouterr()
    assert rc == 2
    assert "[shard]" in captured.err and "[replica]" in captured.err
    assert "Workaround" in captured.err


def test_cli_mutate_checked(capsys):
    from repro.cli import main

    rc = main(
        [
            "mutate", "--dataset", "tiny", "--index", "vafile",
            "--insert", "10", "--delete", "5", "--filter", "label<=6",
            "--check",
        ]
    )
    captured = capsys.readouterr()
    assert rc == 0
    assert "bit-identical" in captured.out
    assert "advisor:" in captured.out


# ----------------------------------------------------------------------
# Sharded mutation routing
# ----------------------------------------------------------------------
def test_sharded_engine_mutate_routes_and_masks(micro_points):
    from repro.shard.engine import ShardedEngine
    from repro.shard.spec import ShardSpec

    n = len(micro_points)
    bounds = np.linspace(0, n, 4, dtype=np.int64)
    specs = [
        ShardSpec(
            shard_id=s,
            member_ids=np.arange(bounds[s], bounds[s + 1], dtype=np.int64),
            points=micro_points[bounds[s] : bounds[s + 1]],
            index_name="linear",
            cache_spec={"kind": "exact", "capacity_bytes": 1 << 16},
        )
        for s in range(3)
    ]
    rng = np.random.default_rng(11)
    with ShardedEngine(specs) as engine:
        inserted = rng.permutation(micro_points)[:15]
        new_ids = engine.mutate(insert_points=inserted)
        assert new_ids.tolist() == list(range(n, n + 15))
        dead = np.array([0, bounds[1] + 1, n - 1, n + 2])
        engine.mutate(delete_ids=dead)
        with pytest.raises(IndexError):
            engine.mutate(delete_ids=np.array([engine.n_points]))

        allpts = np.vstack([micro_points, inserted])
        live = np.ones(len(allpts), dtype=bool)
        live[dead] = False
        for query in rng.permutation(micro_points)[:6]:
            result = engine.search(query, 5)
            d = np.linalg.norm(allpts - query, axis=1)
            d[~live] = np.inf
            order = np.lexsort((np.arange(len(allpts)), d))[:5]
            assert result.ids.tolist() == order.tolist()
            assert np.array_equal(result.distances, d[order])
            assert not np.isin(result.ids, dead).any()


# ----------------------------------------------------------------------
# Churn-delta artifacts
# ----------------------------------------------------------------------
def test_churn_delta_publish_then_swap(tmp_path):
    from repro.artifacts import (
        ArtifactError,
        load_churn_delta,
        merge_delta_state,
        publish_churn_delta,
        read_current,
    )

    base = np.arange(20, dtype=np.float64).reshape(5, 4)
    data = MutableDataset(base, attributes={"label": np.arange(5)})
    data.append(base[:2] + 1, attributes={"label": np.array([7, 8])})
    data.tombstone(np.array([1, 5]))

    root = tmp_path / "churn"
    first = publish_churn_delta(root, {0: data.to_state()})
    assert read_current(root) == first

    data.tombstone(np.array([2]))
    second = publish_churn_delta(root, {0: data.to_state()})
    assert read_current(root) == second
    assert first.name == "epoch-000001" and second.name == "epoch-000002"

    delta = load_churn_delta(root)[0]
    state = merge_delta_state(base, delta)
    restored = MutableDataset.from_state(state)
    assert np.array_equal(restored.points, data.points)
    assert np.array_equal(restored.live, data.live)
    assert np.array_equal(
        restored.attributes["label"], data.attributes["label"]
    )
    with pytest.raises(ArtifactError):
        merge_delta_state(base[:3], delta)


def test_serve_summary_mutation_block():
    from repro.obs.reporter import serve_summary

    registry = MetricsRegistry()
    assert "mutations" not in serve_summary(registry)
    MutationCounters(metrics=registry).applied(4)
    registry.counter("serve_mutations_total", tier="default").inc(2)
    block = serve_summary(registry)["mutations"]
    assert block["mutations_applied_total"] == 4
    assert block["fenced_batches"] == 2
    assert block["cache_patched_total"] == 0
