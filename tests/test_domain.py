"""Unit tests for value domains and discretization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.domain import ValueDomain, discretize


class TestDiscretize:
    def test_range_is_respected(self):
        pts = np.array([[0.0, 1.0], [0.5, -2.0]])
        grid = discretize(pts, 8)
        assert grid.min() >= 0
        assert grid.max() <= 255
        assert np.all(grid == np.rint(grid))

    def test_constant_input_maps_to_zero(self):
        grid = discretize(np.full((3, 4), 7.7), 10)
        assert np.all(grid == 0)

    def test_extremes_hit_grid_ends(self):
        grid = discretize(np.array([[0.0], [1.0]]), 8)
        assert grid[0, 0] == 0
        assert grid[1, 0] == 255

    def test_monotone(self):
        vals = np.sort(np.random.default_rng(0).normal(size=100))
        grid = discretize(vals.reshape(-1, 1), 6).ravel()
        assert np.all(np.diff(grid) >= 0)

    @pytest.mark.parametrize("bits", [0, 25, -3])
    def test_rejects_bad_bits(self, bits):
        with pytest.raises(ValueError):
            discretize(np.zeros((2, 2)), bits)

    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=2, max_side=20),
            elements=st.floats(-1e6, 1e6),
        ),
        st.integers(1, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_values_on_grid(self, pts, bits):
        grid = discretize(pts, bits)
        assert grid.min() >= 0
        assert grid.max() <= 2**bits - 1
        assert np.all(grid == np.rint(grid))


class TestValueDomain:
    def test_from_points_counts(self):
        dom = ValueDomain.from_points(np.array([[1.0, 2.0], [2.0, 2.0]]))
        assert dom.values.tolist() == [1.0, 2.0]
        assert dom.counts.tolist() == [1, 3]
        assert dom.size == 2
        assert dom.span == 1.0

    def test_from_column(self):
        dom = ValueDomain.from_column(np.array([5.0, 5.0, 9.0]))
        assert dom.values.tolist() == [5.0, 9.0]
        assert dom.counts.tolist() == [2, 1]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            ValueDomain.from_points(np.empty((0, 3)))

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            ValueDomain(np.array([2.0, 1.0]), np.array([1, 1]))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            ValueDomain(np.array([1.0, 2.0]), np.array([1, -1]))

    def test_index_of_members(self):
        dom = ValueDomain(np.array([1.0, 4.0, 9.0]), np.array([1, 2, 3]))
        assert dom.index_of(np.array([9.0, 1.0, 4.0])).tolist() == [2, 0, 1]

    def test_index_of_non_member_raises(self):
        dom = ValueDomain(np.array([1.0, 4.0]), np.array([1, 1]))
        with pytest.raises(ValueError):
            dom.index_of(np.array([2.0]))

    def test_project_frequencies(self):
        dom = ValueDomain(np.array([1.0, 4.0, 9.0]), np.array([1, 1, 1]))
        freq = dom.project_frequencies(np.array([4.0, 4.0, 9.0]))
        assert freq.tolist() == [0, 2, 1]

    def test_project_frequencies_total(self, micro_domain, micro_points):
        freq = micro_domain.project_frequencies(micro_points[:10].ravel())
        assert freq.sum() == 10 * micro_points.shape[1]

    def test_counts_cover_all_coordinates(self, micro_domain, micro_points):
        assert micro_domain.counts.sum() == micro_points.size
