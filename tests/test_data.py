"""Data substrate: synthetic generators, Zipf query logs, registry, k-means."""

import numpy as np
import pytest

from repro.data.clustering import assign_labels, kmeans
from repro.data.datasets import REGISTRY, Dataset, load_dataset
from repro.data.synthetic import clustered_dataset, uniform_dataset
from repro.data.workload import QueryLog, generate_query_log


class TestSynthetic:
    def test_shapes_and_grid(self):
        pts = clustered_dataset(500, 12, value_bits=8, seed=0)
        assert pts.shape == (500, 12)
        assert pts.min() >= 0 and pts.max() <= 255
        assert np.all(pts == np.rint(pts))

    def test_determinism(self):
        a = clustered_dataset(100, 6, seed=3)
        b = clustered_dataset(100, 6, seed=3)
        assert np.array_equal(a, b)

    def test_clustered_is_clustered(self):
        """Clustered data has much smaller NN distances than uniform."""
        n, d = 400, 24
        clus = clustered_dataset(n, d, n_clusters=5, seed=0)
        unif = uniform_dataset(n, d, seed=0)

        def median_nn(pts):
            d2 = np.sum((pts[:50, None] - pts[None]) ** 2, axis=2)
            np.fill_diagonal(d2[:, :50], np.inf)
            return np.median(np.sqrt(d2.min(axis=1)))

        assert median_nn(clus) < 0.5 * median_nn(unif)

    def test_validation(self):
        with pytest.raises(ValueError):
            clustered_dataset(0, 5)
        with pytest.raises(ValueError):
            clustered_dataset(10, 5, n_clusters=0)


class TestWorkload:
    def test_split_sizes(self):
        pts = uniform_dataset(300, 4, seed=1)
        log = generate_query_log(pts, pool_size=50, workload_size=400, test_size=30, seed=0)
        assert log.workload.shape == (400, 4)
        assert log.test.shape == (30, 4)

    def test_zipf_skew_concentrates_popularity(self):
        pts = uniform_dataset(300, 4, seed=1)
        skewed = generate_query_log(
            pts, pool_size=100, workload_size=2000, test_size=10, zipf_s=1.4, seed=0
        )
        flat = generate_query_log(
            pts, pool_size=100, workload_size=2000, test_size=10, zipf_s=0.0, seed=0
        )
        top10_skewed = skewed.popularity()[:10].sum() / 2010
        top10_flat = flat.popularity()[:10].sum() / 2010
        assert top10_skewed > 2 * top10_flat

    def test_popularity_is_total_log(self):
        pts = uniform_dataset(100, 3, seed=2)
        log = generate_query_log(pts, pool_size=20, workload_size=100, test_size=5, seed=0)
        assert log.popularity().sum() == 105

    def test_test_queries_come_from_same_pool(self):
        pts = uniform_dataset(100, 3, seed=2)
        log = generate_query_log(pts, pool_size=10, workload_size=50, test_size=20, seed=0)
        pool_rows = {tuple(row) for row in log.pool}
        assert all(tuple(row) in pool_rows for row in log.test)

    def test_jitter_moves_queries_off_data(self):
        pts = uniform_dataset(100, 3, seed=2)
        log = generate_query_log(pts, pool_size=10, workload_size=5, test_size=5,
                                 jitter=0.1, seed=0)
        data_rows = {tuple(row) for row in pts}
        assert any(tuple(row) not in data_rows for row in log.pool)

    def test_validation(self):
        pts = uniform_dataset(10, 2, seed=0)
        with pytest.raises(ValueError):
            generate_query_log(pts, pool_size=0)
        with pytest.raises(ValueError):
            generate_query_log(pts, zipf_s=-1)
        with pytest.raises(ValueError):
            QueryLog(pts, np.array([99]), np.array([0]))


class TestDatasetRegistry:
    def test_tiny_load(self, tiny_dataset):
        cfg = REGISTRY["tiny"]
        assert tiny_dataset.num_points == cfg.n_points
        assert tiny_dataset.dim == cfg.dim
        assert tiny_dataset.query_log is not None

    def test_scale(self):
        ds = load_dataset("tiny", seed=0, scale=0.5)
        assert ds.num_points == 1000

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            load_dataset("nope")

    def test_registry_names_match_paper(self):
        assert {"nus-wide-sim", "imgnet-sim", "sogou-sim"} <= set(REGISTRY)
        assert REGISTRY["nus-wide-sim"].dim == 150
        assert REGISTRY["imgnet-sim"].dim == 150
        assert REGISTRY["sogou-sim"].dim == 960

    def test_dataset_helpers(self, tiny_dataset):
        assert tiny_dataset.point_bytes == tiny_dataset.dim * 4
        assert tiny_dataset.file_bytes == tiny_dataset.num_points * tiny_dataset.point_bytes
        dom = tiny_dataset.domain
        assert dom.size <= 256
        dd = tiny_dataset.dimension_domain(0)
        assert dd.counts.sum() == tiny_dataset.num_points

    def test_from_points_discretizes(self):
        rng = np.random.default_rng(0)
        raw = rng.normal(size=(300, 5))
        ds = Dataset.from_points("x", raw, value_bits=6, pool_size=20,
                                 workload_size=50, test_size=5)
        assert ds.points.max() <= 63
        assert ds.query_log is not None

    def test_with_query_log(self, tiny_dataset):
        pts = tiny_dataset.points
        log = generate_query_log(pts, pool_size=5, workload_size=10, test_size=2, seed=9)
        ds2 = tiny_dataset.with_query_log(log)
        assert ds2.query_log is log
        assert ds2.points is tiny_dataset.points


class TestKMeans:
    def test_separable_clusters_recovered(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0, 0.5, size=(50, 4))
        b = rng.normal(20, 0.5, size=(50, 4))
        pts = np.concatenate([a, b])
        centers, labels = kmeans(pts, 2, seed=1)
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[99]

    def test_labels_nearest_center(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(80, 3))
        centers, labels = kmeans(pts, 4, seed=0)
        assert np.array_equal(labels, assign_labels(pts, centers))

    def test_clips_k_to_n(self):
        pts = np.random.default_rng(0).normal(size=(3, 2))
        centers, labels = kmeans(pts, 10, seed=0)
        assert len(centers) == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.empty((0, 2)), 2)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0)
