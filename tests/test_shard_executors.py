"""Executor fault-injection and concurrency tests (shard PR satellites).

Covers:

* a worker raising mid-batch in the process executor surfaces the
  *original* exception (type name, repr, worker traceback) as a
  fail-fast :class:`ShardWorkerError` — never a hang, never partial
  results;
* the same injected fault in serial/thread executors propagates as the
  original exception object (in-process, nothing to serialize);
* a worker *death* (hard ``os._exit``) fails fast by default, and with
  ``max_retries`` the worker is respawned from its spec and the call
  retried, recovering the correct answer;
* two threads driving separate shard engines concurrently never corrupt
  each other's cache telemetry or metrics registries (exact
  reconciliation of every counter afterwards);
* a *hung* worker (sleeping forever in ``candidates``) is detected by
  ``recv_timeout_s``, terminated, and surfaced as a ``ShardWorkerError``
  — never retried, never a coordinator hang;
* shutdown escalates join → terminate → kill so ``close()`` leaks no
  processes even mid-hang, and a second engine sharing nothing with the
  crashed one keeps answering.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import ApproximateCache, CachePolicy, NoCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.engine.engine import QueryEngine
from repro.index.linear_scan import LinearScanIndex
from repro.shard import (
    ShardedEngine,
    ShardWorkerError,
    build_shard_specs,
    make_executor,
)
from repro.shard.testing import InjectedShardFault
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

SEED = 424242
N_POINTS = 120
DIM = 4
K = 4


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    return {
        "points": rng.normal(size=(N_POINTS, DIM)),
        "queries": rng.normal(size=(4, DIM)),
    }


def faulty_specs(data, fail_shard=1, fail_on_call=0, n_shards=3):
    return build_shard_specs(
        data["points"],
        n_shards,
        index_name="repro.shard.testing:build_faulty",
        index_params={
            "fail_shard": fail_shard, "fail_on_call": fail_on_call
        },
    )


# ----------------------------------------------------------------------
# Injected task exceptions (fail fast, original error surfaced)
# ----------------------------------------------------------------------
def test_process_worker_exception_surfaces_original(data) -> None:
    engine = ShardedEngine(faulty_specs(data), executor="process")
    try:
        with pytest.raises(ShardWorkerError) as excinfo:
            engine.search_many(data["queries"], K)
    finally:
        engine.close()
    message = str(excinfo.value)
    assert excinfo.value.shard_id == 1
    assert "InjectedShardFault" in message  # original type name
    assert "injected failure on shard 1" in message  # original repr
    assert "repro/shard/testing.py" in excinfo.value.traceback_text


def test_process_worker_exception_mid_batch(data) -> None:
    """The fault fires on the *second* query of one batched call."""
    engine = ShardedEngine(
        faulty_specs(data, fail_on_call=1), executor="process"
    )
    try:
        with pytest.raises(ShardWorkerError) as excinfo:
            engine.search_many(data["queries"], K)
    finally:
        engine.close()
    assert "InjectedShardFault" in str(excinfo.value)
    assert "call 1" in str(excinfo.value)


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_inprocess_executors_propagate_original_exception(
    executor: str, data
) -> None:
    engine = ShardedEngine(faulty_specs(data), executor=executor)
    try:
        with pytest.raises(InjectedShardFault, match="shard 1"):
            engine.search_many(data["queries"], K)
    finally:
        engine.close()


def test_worker_survives_task_exception(data) -> None:
    """A task exception must not kill the worker: later calls succeed."""
    engine = ShardedEngine(faulty_specs(data), executor="process")
    try:
        with pytest.raises(ShardWorkerError):
            engine.search_many(data["queries"], K)
        assert engine.ping() == [0, 1, 2]
    finally:
        engine.close()


# ----------------------------------------------------------------------
# Worker death: fail fast vs max_retries recovery
# ----------------------------------------------------------------------
def dying_specs(data, flag_path, n_shards=3):
    return build_shard_specs(
        data["points"],
        n_shards,
        index_name="repro.shard.testing:build_dying",
        index_params={"die_shard": 0, "flag_path": str(flag_path)},
    )


def test_worker_death_fails_fast_without_retries(data, tmp_path) -> None:
    flag = tmp_path / "die-once"
    flag.write_text("")
    engine = ShardedEngine(
        dying_specs(data, flag), executor="process", max_retries=0
    )
    try:
        with pytest.raises(ShardWorkerError, match="died"):
            engine.search_many(data["queries"], K)
    finally:
        engine.close()


def test_worker_death_recovers_with_retry(data, tmp_path) -> None:
    flag = tmp_path / "die-once"
    flag.write_text("")
    baseline = QueryEngine.for_index(
        LinearScanIndex(N_POINTS),
        PointFile(data["points"], disk=SimulatedDisk(DiskConfig())),
        NoCache(),
    ).search_many(data["queries"], K)
    engine = ShardedEngine(
        dying_specs(data, flag), executor="process", max_retries=1
    )
    try:
        results = engine.search_many(data["queries"], K)
    finally:
        engine.close()
    assert not flag.exists()  # the worker died exactly once
    for base, got in zip(baseline, results):
        assert np.array_equal(base.ids, got.ids)
        assert np.array_equal(base.distances, got.distances)


def test_make_executor_rejects_unknown_name() -> None:
    with pytest.raises(ValueError, match="unknown executor"):
        make_executor("fork-bomb")


def test_process_executor_rejects_negative_retries() -> None:
    from repro.shard.executors import ProcessExecutor

    with pytest.raises(ValueError):
        ProcessExecutor(max_retries=-1)


def test_ping_runs_on_every_executor(data) -> None:
    specs = build_shard_specs(data["points"], 3)
    for name in ("serial", "thread", "process"):
        with ShardedEngine(specs, executor=name) as engine:
            assert engine.ping() == [0, 1, 2]


# ----------------------------------------------------------------------
# Concurrent engines: telemetry/registry isolation (satellite 6)
# ----------------------------------------------------------------------
def test_concurrent_engines_do_not_corrupt_counters(data) -> None:
    """Two threads hammer two independent sharded engines; afterwards
    each engine's cache telemetry and metrics reconcile exactly with its
    own workload — any cross-talk would break the arithmetic."""
    points = data["points"]
    encoder = GlobalHistogramEncoder(
        build_equidepth(ValueDomain.from_points(points), 16), DIM
    )
    cache_spec = {
        "kind": "approx",
        "encoder": encoder,
        "capacity_bytes": 1 << 10,
        "policy": "hff",
    }
    rng = np.random.default_rng(SEED + 1)
    frequencies = rng.integers(0, 5, size=N_POINTS).astype(np.int64)
    workloads = [
        rng.normal(size=(12, DIM)),  # engine 0's queries
        rng.normal(size=(17, DIM)),  # engine 1's (different count!)
    ]
    engines = [
        ShardedEngine(
            build_shard_specs(
                points, n_shards, cache_spec=cache_spec,
                frequencies=frequencies,
            ),
            executor="thread",
        )
        for n_shards in (2, 3)
    ]
    results: list = [None, None]
    errors: list = []
    barrier = threading.Barrier(2)

    def drive(slot: int) -> None:
        try:
            barrier.wait()
            out = []
            for _ in range(3):  # repeated rounds to maximize interleaving
                out = engines[slot].search_many(workloads[slot], K)
            results[slot] = out
        except BaseException as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [
        threading.Thread(target=drive, args=(slot,)) for slot in (0, 1)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors

    rounds = 3
    for slot, engine in enumerate(engines):
        n_queries = len(workloads[slot])
        telemetry = [t for t in engine.shard_telemetry() if t is not None]
        merged = engine.merged_metrics()
        # Linear scan: every query probes every point exactly once.
        expected_lookups = rounds * n_queries * N_POINTS
        assert sum(t.lookups for t in telemetry) == expected_lookups, (
            f"engine {slot}: telemetry.lookups corrupted"
        )
        assert sum(t.hits for t in telemetry) == merged.value(
            "engine_cache_hits_total"
        ), f"engine {slot}: hits diverge from metrics"
        assert merged.value("engine_queries_total") == (
            rounds * n_queries * engine.n_shards
        ), f"engine {slot}: query counter corrupted"
        assert merged.value("engine_candidates_total") == (
            rounds * n_queries * N_POINTS
        ), f"engine {slot}: candidate counter corrupted"
        # And the answers themselves stay correct under concurrency.
        baseline = QueryEngine.for_index(
            LinearScanIndex(N_POINTS),
            PointFile(points, disk=SimulatedDisk(DiskConfig())),
            _fresh_cache(encoder, frequencies, points),
        ).search_many(workloads[slot], K)
        for base, got in zip(baseline, results[slot]):
            assert np.array_equal(base.ids, got.ids)
            assert np.array_equal(base.distances, got.distances)
        engine.close()


def _fresh_cache(encoder, frequencies, points):
    cache = ApproximateCache(encoder, 1 << 10, N_POINTS, CachePolicy.HFF)
    cache.populate_hff(frequencies, points)
    return cache


# ----------------------------------------------------------------------
# Hung workers: recv_timeout_s detection + shutdown escalation
# ----------------------------------------------------------------------
def hanging_specs(data, hang_shard=0, n_shards=2, **params):
    return build_shard_specs(
        data["points"],
        n_shards,
        index_name="repro.shard.testing:build_hanging",
        index_params={"hang_shard": hang_shard, "hang_s": 120.0, **params},
    )


def _worker_processes(engine):
    return [w[0] for w in engine.executor._workers]


def test_hung_worker_detected_and_terminated(data) -> None:
    engine = ShardedEngine(
        hanging_specs(data), executor="process",
        recv_timeout_s=0.5, join_timeout_s=0.5,
    )
    procs = _worker_processes(engine)
    try:
        started = time.monotonic()
        with pytest.raises(ShardWorkerError, match="no reply"):
            engine.search_many(data["queries"], K)
        elapsed = time.monotonic() - started
        assert elapsed < 30, "hang detection took far longer than the budget"
        assert not procs[0].is_alive(), "hung worker was not terminated"
    finally:
        engine.close()
    assert all(not p.is_alive() for p in procs), "close() leaked a process"


def test_hang_never_retried(data) -> None:
    """A deterministic hang would hang again: exactly one detection, no
    respawn attempts even with a retry budget."""
    engine = ShardedEngine(
        hanging_specs(data), executor="process",
        max_retries=3, recv_timeout_s=0.5, join_timeout_s=0.5,
    )
    n_procs = len(_worker_processes(engine))
    try:
        started = time.monotonic()
        with pytest.raises(ShardWorkerError, match="no reply"):
            engine.search_many(data["queries"], K)
        # Retries would multiply the wait by (1 + max_retries).
        assert time.monotonic() - started < 3 * 0.5 + 10
        assert len(_worker_processes(engine)) == n_procs
    finally:
        engine.close()


def test_close_escalates_while_worker_hangs(data) -> None:
    """close() during an un-consumed hang must still reap every process."""
    engine = ShardedEngine(
        hanging_specs(data), executor="process", join_timeout_s=0.5
    )
    procs = _worker_processes(engine)
    # Fire a call but never wait for the reply: shard 0 is now hanging.
    engine.executor._workers[0][1].send(
        ("call", "ping", ())
    )
    time.sleep(0.1)
    engine.close()
    for p in procs:
        p.join(timeout=10)
        assert not p.is_alive(), "close() leaked a hung process"


def test_second_engine_unaffected_by_crash(data) -> None:
    """One engine's worker hang/teardown must not disturb an independent
    engine's workers or answers."""
    healthy = ShardedEngine(
        build_shard_specs(data["points"], 2), executor="process"
    )
    crashing = ShardedEngine(
        hanging_specs(data), executor="process",
        recv_timeout_s=0.5, join_timeout_s=0.5,
    )
    try:
        before = healthy.search_many(data["queries"], K)
        with pytest.raises(ShardWorkerError):
            crashing.search_many(data["queries"], K)
        crashing.close()
        after = healthy.search_many(data["queries"], K)
        assert healthy.ping() == [0, 1]
        for a, b in zip(before, after):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
    finally:
        crashing.close()
        healthy.close()


def test_degraded_coordinator_survives_hung_shard(data) -> None:
    """degraded=True: the hung shard is dropped and the survivors answer
    with an explicit incompleteness record."""
    engine = ShardedEngine(
        hanging_specs(data), executor="process",
        recv_timeout_s=0.5, join_timeout_s=0.5, degraded=True,
    )
    try:
        results = engine.search_many(data["queries"], K)
    finally:
        engine.close()
    surviving = set(engine.specs[1].member_ids)
    for r in results:
        assert not r.outcome.complete
        assert r.outcome.reason == "shard_failure"
        assert r.outcome.shards_failed == 1
        assert r.outcome.shards_total == 2
        assert set(r.ids) <= surviving
