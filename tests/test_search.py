"""Algorithm 1 end-to-end: cached search preserves the index's answers."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth, build_knn_optimal
from repro.core.cache import ApproximateCache, CachePolicy, ExactCache, NoCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.search import CachedKNNSearch
from repro.index.linear_scan import LinearScanIndex
from repro.storage.pointfile import PointFile
from tests.conftest import assert_valid_knn


@pytest.fixture(scope="module")
def world(micro_points):
    pf = PointFile(micro_points)
    index = LinearScanIndex(len(micro_points))
    dom = ValueDomain.from_points(micro_points)
    encoder = GlobalHistogramEncoder(build_equidepth(dom, 16), micro_points.shape[1])
    return micro_points, pf, index, encoder


class TestResultQuality:
    @pytest.mark.parametrize("k", [1, 5, 13])
    def test_nocache_matches_bruteforce(self, world, k):
        points, pf, index, _ = world
        searcher = CachedKNNSearch(index, pf, NoCache())
        for q in points[::80]:
            res = searcher.search(q + 0.5, k)
            assert_valid_knn(points, q + 0.5, k, res.ids)

    @pytest.mark.parametrize("k", [1, 5, 13])
    def test_approximate_cache_preserves_results(self, world, k):
        points, pf, index, encoder = world
        cache = ApproximateCache(encoder, 1 << 13, len(points))
        cache.populate(np.arange(len(points)), points)
        searcher = CachedKNNSearch(index, pf, cache)
        for q in points[::80]:
            res = searcher.search(q + 0.5, k)
            assert_valid_knn(points, q + 0.5, k, res.ids)

    def test_exact_cache_preserves_results(self, world):
        points, pf, index, _ = world
        cache = ExactCache(points.shape[1], 1 << 12, len(points))
        cache.populate(np.arange(len(points)), points)
        searcher = CachedKNNSearch(index, pf, cache)
        for q in points[::60]:
            res = searcher.search(q, 7)
            assert_valid_knn(points, q, 7, res.ids)

    def test_partial_cache_preserves_results(self, world):
        points, pf, index, encoder = world
        cache = ApproximateCache(encoder, 600, len(points))  # tiny cache
        cache.populate(np.arange(cache.max_items), points[: cache.max_items])
        searcher = CachedKNNSearch(index, pf, cache)
        for q in points[::60]:
            res = searcher.search(q + 1.0, 5)
            assert_valid_knn(points, q + 1.0, 5, res.ids)

    def test_knn_optimal_histogram_cache(self, world):
        points, pf, index, _ = world
        dom = ValueDomain.from_points(points)
        fprime = dom.counts.astype(float)
        encoder = GlobalHistogramEncoder(
            build_knn_optimal(dom, fprime, 32), points.shape[1]
        )
        cache = ApproximateCache(encoder, 1 << 13, len(points))
        cache.populate(np.arange(len(points)), points)
        searcher = CachedKNNSearch(index, pf, cache)
        for q in points[::60]:
            res = searcher.search(q, 9)
            assert_valid_knn(points, q, 9, res.ids)


class TestAccounting:
    def test_cache_reduces_io(self, world):
        points, _, index, encoder = world
        pf_a = PointFile(points)
        pf_b = PointFile(points)
        cache = ApproximateCache(encoder, 1 << 13, len(points))
        cache.populate(np.arange(len(points)), points)
        uncached = CachedKNNSearch(index, pf_a, NoCache())
        cached = CachedKNNSearch(index, pf_b, cache)
        q = points[5] + 0.5
        r_u = uncached.search(q, 5)
        r_c = cached.search(q, 5)
        assert r_c.stats.refine_page_reads < r_u.stats.refine_page_reads
        assert r_c.stats.hit_ratio == 1.0
        assert r_u.stats.hit_ratio == 0.0

    def test_stats_consistency(self, world):
        points, pf, index, encoder = world
        cache = ApproximateCache(encoder, 1 << 12, len(points))
        cache.populate(np.arange(cache.max_items), points[: cache.max_items])
        searcher = CachedKNNSearch(index, pf, cache)
        res = searcher.search(points[0], 5)
        s = res.stats
        assert s.num_candidates == len(points)
        assert s.pruned + s.confirmed + s.c_refine == s.num_candidates
        assert 0 <= s.hit_ratio <= 1
        assert 0 <= s.prune_ratio <= 1
        assert s.refined_fetches <= s.c_refine

    def test_lru_cache_learns_from_fetches(self, world):
        points, _, index, encoder = world
        pf = PointFile(points)
        cache = ApproximateCache(
            encoder, 1 << 13, len(points), policy=CachePolicy.LRU
        )
        searcher = CachedKNNSearch(index, pf, cache)
        q = points[2]
        first = searcher.search(q, 5)
        assert first.stats.cache_hits == 0
        second = searcher.search(q, 5)
        assert second.stats.cache_hits > 0
        assert second.stats.refine_page_reads <= first.stats.refine_page_reads

    def test_rejects_bad_k(self, world):
        points, pf, index, _ = world
        with pytest.raises(ValueError):
            CachedKNNSearch(index, pf, NoCache()).search(points[0], 0)


class TestEagerMissFetch:
    """Footnote 6: eager miss fetching preserves exactness and never
    pays for a page twice."""

    def test_exactness(self, world):
        points, _, index, encoder = world
        pf = PointFile(points)
        cache = ApproximateCache(encoder, 2000, len(points))
        cache.populate(np.arange(cache.max_items), points[: cache.max_items])
        searcher = CachedKNNSearch(index, pf, cache, eager_miss_fetch=True)
        for q in points[::60]:
            res = searcher.search(q + 0.5, 7)
            assert_valid_knn(points, q + 0.5, 7, res.ids)

    def test_no_double_charged_pages(self, world):
        points, _, index, encoder = world
        pf_lazy, pf_eager = PointFile(points), PointFile(points)
        cache = ApproximateCache(encoder, 2000, len(points))
        cache.populate(np.arange(cache.max_items), points[: cache.max_items])
        lazy = CachedKNNSearch(index, pf_lazy, cache)
        eager = CachedKNNSearch(index, pf_eager, cache, eager_miss_fetch=True)
        q = points[4] + 0.3
        a = lazy.search(q, 5)
        b = eager.search(q, 5)
        # Eager can only shift when pages are read, not inflate them much:
        # every miss is read exactly once either way; extra reads can only
        # come from pruned-by-tighter-bounds differences.
        assert b.stats.refine_page_reads <= a.stats.refine_page_reads + len(points)
        assert set(b.ids.tolist()) <= {
            int(i) for i in np.argsort(np.linalg.norm(points - q, axis=1))[:10]
        }

    def test_full_cache_means_no_eager_fetch(self, world):
        points, _, index, encoder = world
        pf = PointFile(points)
        cache = ApproximateCache(encoder, 1 << 13, len(points))
        cache.populate(np.arange(len(points)), points)
        searcher = CachedKNNSearch(index, pf, cache, eager_miss_fetch=True)
        res = searcher.search(points[0], 5)
        assert res.stats.hit_ratio == 1.0
