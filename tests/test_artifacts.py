"""Snapshot artifacts: store primitives, round-trip bit-identity, hot swap.

The load-bearing property (ISSUE acceptance): a snapshot-loaded pipeline
answers every query bit-identically — same ids, same distances, same
page reads — to the freshly built pipeline it was saved from, across
index families, cache methods and eviction policies.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.artifacts.errors import ArtifactError, FormatVersionError
from repro.artifacts.snapshot import (
    SNAPSHOT_FORMAT_VERSION,
    inspect_snapshot,
    load_cache_snapshot,
    load_queries,
    load_snapshot,
    save_cache_snapshot,
    save_snapshot,
    verify_snapshot,
)
from repro.artifacts.store import (
    ObjectStore,
    publish_current,
    read_current,
    read_manifest,
    write_atomic,
    write_manifest,
)
from repro.spec.build import build_pipeline
from repro.spec.sections import (
    CacheSection,
    DatasetSection,
    IndexSection,
    PipelineSpec,
)


def micro_spec(index_name, method, tau=6, cache_bytes=1 << 15, policy="hff"):
    return PipelineSpec(
        dataset=DatasetSection(name="micro"),
        index=IndexSection(name=index_name),
        cache=CacheSection(
            method=method, tau=tau, cache_bytes=cache_bytes, policy=policy
        ),
        k=5,
        seed=0,
    )


def assert_identical_answers(a, b, queries, k=5):
    """ids, distances and page reads must match query-for-query."""
    for q in queries:
        ra, rb = a.search(q, k), b.search(q, k)
        assert np.array_equal(ra.ids, rb.ids)
        assert np.array_equal(ra.distances, rb.distances)
        assert ra.stats.page_reads == rb.stats.page_reads


def telemetry_dict(pipeline):
    telemetry = getattr(pipeline.cache, "telemetry", None)
    return None if telemetry is None else dataclasses.asdict(telemetry)


# ----------------------------------------------------------------------
# Store primitives
# ----------------------------------------------------------------------
class TestObjectStore:
    def test_put_is_content_addressed_and_deduplicated(self, tmp_path):
        store = ObjectStore(tmp_path)
        arr = np.arange(64, dtype=np.int64)
        d1 = store.put_array(arr)
        d2 = store.put_array(arr.copy())
        assert d1 == d2
        assert len(list((tmp_path / "objects").iterdir())) == 1
        assert np.array_equal(store.load(d1), arr)

    def test_distinct_arrays_distinct_digests(self, tmp_path):
        store = ObjectStore(tmp_path)
        assert store.put_array(np.zeros(4)) != store.put_array(np.ones(4))

    def test_load_is_readonly_mmap(self, tmp_path):
        store = ObjectStore(tmp_path)
        digest = store.put_array(np.arange(8.0))
        loaded = store.load(digest, mmap=True)
        assert isinstance(loaded, np.memmap)
        with pytest.raises(ValueError):
            loaded[0] = 99.0

    def test_members_round_trip(self, tmp_path):
        store = ObjectStore(tmp_path)
        arrays = {"a": np.arange(3), "b": np.eye(2)}
        members = store.put_members(arrays)
        loaded = store.load_members(members, mmap=False)
        assert set(loaded) == {"a", "b"}
        assert np.array_equal(loaded["a"], arrays["a"])
        assert np.array_equal(loaded["b"], arrays["b"])

    def test_write_atomic(self, tmp_path):
        target = tmp_path / "payload.bin"
        write_atomic(target, b"hello")
        assert target.read_bytes() == b"hello"
        assert list(tmp_path.iterdir()) == [target]  # no tmp litter


class TestCurrentPointer:
    def test_publish_and_read(self, tmp_path):
        write_manifest(tmp_path / "snap-a", {"format_version": 1})
        publish_current(tmp_path, "snap-a")
        assert read_current(tmp_path) == tmp_path / "snap-a"

    def test_republish_swaps_atomically(self, tmp_path):
        for name in ("snap-a", "snap-b"):
            write_manifest(tmp_path / name, {"format_version": 1})
        publish_current(tmp_path, "snap-a")
        publish_current(tmp_path, "snap-b")
        assert read_current(tmp_path) == tmp_path / "snap-b"

    def test_publish_incomplete_snapshot_rejected(self, tmp_path):
        with pytest.raises(ArtifactError):
            publish_current(tmp_path, "never-written")

    def test_read_without_pointer(self, tmp_path):
        with pytest.raises(ArtifactError):
            read_current(tmp_path)


class TestFormatVersion:
    def test_error_reports_found_expected_and_path(self):
        err = FormatVersionError(99, 1, "/x/manifest.json")
        assert err.found == 99 and err.expected == 1
        assert "found format version 99" in str(err)
        assert "expected version 1" in str(err)
        assert "/x/manifest.json" in str(err)

    def test_error_reports_missing_version(self):
        err = FormatVersionError(None, 1)
        assert "no format version" in str(err)

    def test_load_rejects_manifest_version_drift(self, tmp_path, micro_dataset):
        spec = micro_spec("linear", "EXACT")
        pipeline = build_pipeline(spec, dataset=micro_dataset)
        save_snapshot(tmp_path / "snap", pipeline)
        manifest = read_manifest(tmp_path / "snap")
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        write_manifest(tmp_path / "snap", manifest)
        with pytest.raises(FormatVersionError) as exc_info:
            load_snapshot(tmp_path / "snap")
        assert exc_info.value.found == SNAPSHOT_FORMAT_VERSION + 1
        assert exc_info.value.expected == SNAPSHOT_FORMAT_VERSION


# ----------------------------------------------------------------------
# Round-trip bit-identity (the acceptance grid)
# ----------------------------------------------------------------------
class TestSnapshotRoundTrip:
    #: index-family × cache-method acceptance grid: two candidate-path
    #: native codecs, one deterministic-rebuild family, one tree family.
    GRID = [
        ("c2lsh", "HC-O"),
        ("c2lsh", "EXACT"),
        ("vafile", "HC-O"),
        ("vafile", "EXACT"),
        ("e2lsh", "HC-O"),
        ("e2lsh", "EXACT"),
        ("vptree", "HC-O"),
        ("vptree", "EXACT"),
    ]

    @pytest.mark.parametrize("index_name,method", GRID)
    def test_bit_identical_across_grid(
        self, tmp_path, micro_dataset, index_name, method
    ):
        spec = micro_spec(index_name, method)
        fresh = build_pipeline(spec, dataset=micro_dataset)
        queries = micro_dataset.query_log.test
        save_snapshot(tmp_path / "snap", fresh, queries=queries)
        served = load_snapshot(tmp_path / "snap")
        assert_identical_answers(fresh, served, queries)

    @pytest.mark.parametrize("method", ["NO-CACHE", "HC-D", "iHC-D", "mHC-R"])
    def test_other_methods_round_trip(self, tmp_path, micro_dataset, method):
        spec = micro_spec("c2lsh", method)
        fresh = build_pipeline(spec, dataset=micro_dataset)
        queries = micro_dataset.query_log.test[:6]
        save_snapshot(tmp_path / "snap", fresh, queries=queries)
        served = load_snapshot(tmp_path / "snap")
        assert_identical_answers(fresh, served, queries)

    def test_telemetry_round_trips_and_stays_in_lockstep(
        self, tmp_path, micro_dataset
    ):
        spec = micro_spec("c2lsh", "HC-O")
        fresh = build_pipeline(spec, dataset=micro_dataset)
        queries = micro_dataset.query_log.test
        # Warm some counters before saving: the snapshot must carry them.
        for q in queries[:4]:
            fresh.search(q, 5)
        before = telemetry_dict(fresh)
        save_snapshot(tmp_path / "snap", fresh, queries=queries)
        served = load_snapshot(tmp_path / "snap")
        assert telemetry_dict(served) == before
        for q in queries[4:]:
            fresh.search(q, 5)
            served.search(q, 5)
        assert telemetry_dict(served) == telemetry_dict(fresh)

    def test_lru_cache_round_trips_through_replay(
        self, tmp_path, micro_dataset
    ):
        """An LRU cache's eviction state survives the round trip.

        Both sides start from the same saved state and replay the same
        queries, so every touch and eviction lands identically — any
        divergence in state would surface as diverging answers.
        """
        spec = micro_spec("c2lsh", "HC-O", policy="lru", cache_bytes=1 << 13)
        fresh = build_pipeline(spec, dataset=micro_dataset)
        queries = micro_dataset.query_log.test
        for q in queries[:5]:  # mutate the LRU state before saving
            fresh.search(q, 5)
        save_snapshot(tmp_path / "snap", fresh, queries=queries)
        served = load_snapshot(tmp_path / "snap")
        assert_identical_answers(fresh, served, np.concatenate([queries] * 2))
        assert telemetry_dict(served) == telemetry_dict(fresh)

    def test_mmap_false_also_identical(self, tmp_path, micro_dataset):
        spec = micro_spec("vafile", "HC-O")
        fresh = build_pipeline(spec, dataset=micro_dataset)
        queries = micro_dataset.query_log.test[:6]
        save_snapshot(tmp_path / "snap", fresh, queries=queries)
        served = load_snapshot(tmp_path / "snap", mmap=False)
        assert_identical_answers(fresh, served, queries)

    def test_stored_queries_round_trip(self, tmp_path, micro_dataset):
        spec = micro_spec("linear", "EXACT")
        fresh = build_pipeline(spec, dataset=micro_dataset)
        queries = micro_dataset.query_log.test
        save_snapshot(tmp_path / "snap", fresh, queries=queries)
        assert np.array_equal(load_queries(tmp_path / "snap"), queries)

    def test_inspect_reports_members_and_sizes(self, tmp_path, micro_dataset):
        spec = micro_spec("c2lsh", "HC-O")
        fresh = build_pipeline(spec, dataset=micro_dataset)
        save_snapshot(
            tmp_path / "snap", fresh, queries=micro_dataset.query_log.test
        )
        report = inspect_snapshot(tmp_path / "snap")
        assert report["kind"] == "point"
        assert report["index_family"] == "c2lsh"
        assert report["has_spec"] is True
        assert "points" in report["members"]
        assert report["total_bytes"] == sum(
            m["bytes"] for m in report["members"].values()
        )
        assert report["total_bytes"] > 0


# ----------------------------------------------------------------------
# Differential verification (the CI gate)
# ----------------------------------------------------------------------
class TestVerifySnapshot:
    def test_verify_ok_on_registry_dataset(self, tmp_path, tiny_dataset,
                                           tiny_context):
        spec = PipelineSpec(
            dataset=DatasetSection(name="tiny", seed=0),
            index=IndexSection(name="c2lsh"),
            cache=CacheSection(method="HC-O", tau=8, cache_bytes=1 << 16),
            k=10,
            seed=0,
        )
        pipeline = build_pipeline(
            spec, dataset=tiny_dataset, context=tiny_context
        )
        save_snapshot(
            tmp_path / "snap", pipeline,
            queries=tiny_dataset.query_log.test,
        )
        report = verify_snapshot(tmp_path / "snap", limit=3)
        assert report["ok"] is True
        assert report["mismatches"] == []
        assert report["queries"] == 3

    def test_verify_requires_embedded_spec(self, tmp_path, micro_dataset):
        spec = micro_spec("linear", "EXACT")
        pipeline = build_pipeline(spec, dataset=micro_dataset)
        save_snapshot(
            tmp_path / "snap", pipeline,
            queries=micro_dataset.query_log.test,
        )
        manifest = read_manifest(tmp_path / "snap")
        manifest["spec"] = None
        write_manifest(tmp_path / "snap", manifest)
        with pytest.raises(ArtifactError, match="no spec"):
            verify_snapshot(tmp_path / "snap")


# ----------------------------------------------------------------------
# Cache-only snapshots and hot-swap maintenance
# ----------------------------------------------------------------------
class TestHotSwap:
    @pytest.fixture()
    def maintained_world(self, micro_dataset):
        from repro.eval.methods import WorkloadContext

        context = WorkloadContext.prepare(
            micro_dataset, index_name="c2lsh", k=5, seed=0
        )
        return micro_dataset, context

    def _maintainer(self, world, **kwargs):
        from repro.core.maintenance import CacheMaintainer

        dataset, context = world
        maintainer = CacheMaintainer(
            context.index, dataset.points, k=5, tau=5,
            cache_bytes=1 << 14, **kwargs,
        )
        for q in dataset.query_log.workload[:60]:
            maintainer.window.record(q)
        return maintainer

    def test_cache_snapshot_round_trip(self, tmp_path, maintained_world):
        dataset, _ = maintained_world
        maintainer = self._maintainer(maintained_world)
        maintainer.rebuild()
        path = save_cache_snapshot(tmp_path, "snap-000001", maintainer.cache)
        loaded = load_cache_snapshot(path, points=dataset.points)
        assert loaded.num_items == maintainer.cache.num_items
        q = dataset.query_log.test[0]
        a = maintainer.cache.lookup(q, np.arange(20))
        b = loaded.lookup(q, np.arange(20))
        assert np.array_equal(a[0], b[0])  # same hit set
        assert np.array_equal(a[1], b[1]) and np.array_equal(a[2], b[2])

    def test_publish_sets_current_and_report_path(
        self, tmp_path, maintained_world
    ):
        maintainer = self._maintainer(
            maintained_world, snapshot_root=tmp_path
        )
        report = maintainer.rebuild()
        assert report.snapshot_path is not None
        assert read_current(tmp_path) == tmp_path / "snap-000001"
        report = maintainer.rebuild()
        assert read_current(tmp_path) == tmp_path / "snap-000002"
        assert report.snapshot_path.endswith("snap-000002")

    def test_snapshot_swap_matches_in_memory_swap(
        self, tmp_path, maintained_world
    ):
        """Serving the published mmap artifact ≡ swapping the live cache.

        The cached ordering may legitimately differ from the pre-swap
        (uncached) ordering — confirmed results report guaranteed upper
        bounds — so the invariant is snapshot-swap vs in-memory-swap,
        not cached vs uncached.
        """
        from repro.core.search import CachedKNNSearch
        from repro.storage.pointfile import PointFile

        dataset, context = maintained_world
        queries = dataset.query_log.test

        def serving_engine():
            from repro.core.cache import NoCache

            searcher = CachedKNNSearch(
                context.index, PointFile(dataset.points), NoCache()
            )
            return searcher.engine

        snap_engine = serving_engine()
        mem_engine = serving_engine()
        snap_maintainer = self._maintainer(
            maintained_world, snapshot_root=tmp_path, engine=snap_engine
        )
        mem_maintainer = self._maintainer(
            maintained_world, engine=mem_engine
        )
        snap_maintainer.rebuild()
        mem_maintainer.rebuild()
        assert snap_engine.cache is snap_maintainer.cache  # mmap-served
        for q in queries:
            ra = snap_engine.search(q, 5)
            rb = mem_engine.search(q, 5)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
            assert ra.stats.page_reads == rb.stats.page_reads

    def test_swap_cache_rejects_tree_engines(self, micro_dataset):
        from repro.spec.build import build_pipeline as build

        spec = micro_spec("vptree", "EXACT")
        pipeline = build(spec, dataset=micro_dataset)
        with pytest.raises(ValueError):
            pipeline.engine.swap_cache(pipeline.cache)

    def test_metrics_count_rebuilds_and_swaps(
        self, tmp_path, maintained_world
    ):
        from repro.core.cache import NoCache
        from repro.core.search import CachedKNNSearch
        from repro.obs.registry import MetricsRegistry
        from repro.storage.pointfile import PointFile

        dataset, context = maintained_world
        registry = MetricsRegistry()
        searcher = CachedKNNSearch(
            context.index, PointFile(dataset.points), NoCache()
        )
        maintainer = self._maintainer(
            maintained_world, snapshot_root=tmp_path,
            engine=searcher.engine, metrics=registry,
        )
        maintainer.rebuild()
        snapshot = registry.snapshot()
        counters = snapshot.get("counters", snapshot)
        flat = str(counters)
        assert "cache_rebuild_total" in flat
        assert "cache_swap_total" in flat
        assert "snapshot_save_total" in flat
        assert "snapshot_load_total" in flat
