"""Fault injection, resilience policies and degraded-mode search.

The contract under test, in order of importance:

1. **Differential guarantee** — transient faults fully masked by retries
   leave results *bit-identical* (ids, distances, exact masks, stats and
   total page reads) across index × cache cells and across the
   serial/thread/process shard executors.
2. **Graceful degradation** — a forced-open breaker or an expired
   deadline yields ``complete=False`` cache-only answers whose recall@k
   clears the cost model's cache-only hit-ratio estimate (Theorem 1
   machinery) and never surfaces a spurious exception.
3. **Determinism** — a ``FaultSpec`` seed fixes the entire injection
   schedule; the same plan replayed gives the same faults.
4. **Classification** — ``PageRangeError`` is fatal (non-retryable,
   not degradable); transient/corrupt errors are retryable; policy
   signals never count against the breaker.
"""

import numpy as np
import pytest

from repro.core.cache import ApproximateCache, CachePolicy, ExactCache
from repro.engine import QueryEngine
from repro.faults import (
    BreakerConfig,
    CircuitBreaker,
    CircuitOpenError,
    CorruptPageError,
    Deadline,
    DeadlineExceeded,
    FaultPlan,
    FaultSpec,
    FaultyDisk,
    PageRangeError,
    ResiliencePolicy,
    RetryPolicy,
    RetryState,
    TransientIOError,
    degraded_answer,
    is_breaker_fault,
    is_retryable,
    parse_fault_spec,
    run_with_retries,
)
from repro.index.linear_scan import LinearScanIndex
from repro.index.vafile import VAFileIndex
from repro.lsh.c2lsh import C2LSHIndex
from repro.lsh.e2lsh import E2LSHIndex
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

from tests.test_engine import make_cache

# A fault mix aggressive enough to hit most queries, yet fully maskable:
# max_consecutive=2 guarantees two retries absorb every injection burst.
MASKABLE = FaultSpec(
    seed=11, transient_rate=0.3, corrupt_rate=0.1, max_consecutive=2
)
RETRIES = ResiliencePolicy(retry=RetryPolicy(max_retries=2))

FAULT_INDEXES = {
    "linear": lambda pts: LinearScanIndex(len(pts)),
    "vafile": lambda pts: VAFileIndex(pts),
    "c2lsh": lambda pts: C2LSHIndex(pts, seed=1),
    "e2lsh": lambda pts: E2LSHIndex(pts, seed=1),
}


def make_exact_cache(points, capacity_bytes=1 << 12):
    cache = ExactCache(points.shape[1], capacity_bytes, len(points))
    cache.populate(np.arange(cache.max_items), points[: cache.max_items])
    return cache


CACHE_BUILDERS = {
    "approx": lambda pts: make_cache(pts),
    "exact": lambda pts: make_exact_cache(pts),
}


def build_engine(points, index_name, cache_kind, faults=None, policy=None):
    disk = SimulatedDisk(DiskConfig())
    if faults is not None:
        disk = FaultyDisk(disk, faults)
    pf = PointFile(points, disk=disk)
    index = FAULT_INDEXES[index_name](points)
    cache = CACHE_BUILDERS[cache_kind](points)
    engine = QueryEngine.for_index(index, pf, cache, resilience=policy)
    return engine, disk


# ----------------------------------------------------------------------
# FaultSpec / FaultPlan
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_deterministic_schedule(self):
        spec = FaultSpec(seed=5, transient_rate=0.4, corrupt_rate=0.2,
                         max_consecutive=3)

        def run(plan):
            events = []
            for page in range(200):
                try:
                    plan.on_read(page)
                    events.append(None)
                except OSError as exc:
                    events.append(type(exc).__name__)
            return events, dict(plan.counters)

        a = run(spec.build())
        b = run(spec.build())
        assert a == b
        assert any(e == "TransientIOError" for e in a[0])
        assert any(e == "CorruptPageError" for e in a[0])

    def test_max_consecutive_cap(self):
        plan = FaultSpec(seed=1, transient_rate=1.0, max_consecutive=2).build()
        streak = worst = 0
        for page in range(100):
            try:
                plan.on_read(page)
                streak = 0
            except OSError:
                streak += 1
                worst = max(worst, streak)
        assert worst == 2  # never exceeds the cap -> 2 retries mask all

    def test_periodic_and_bad_sectors(self):
        plan = FaultSpec(seed=0, transient_period=3, fail_pages=(7,)).build()
        with pytest.raises(TransientIOError):
            plan.on_read(7)  # bad sector fires first
        plan2 = FaultSpec(seed=0, transient_period=2,
                          max_consecutive=10).build()
        errors = 0
        for page in range(10):
            try:
                plan2.on_read(page)
            except TransientIOError:
                errors += 1
        assert errors == 5  # every 2nd attempt

    def test_parse_fault_spec(self):
        spec = parse_fault_spec("period=3,corrupt_rate=0.01,seed=7")
        assert spec.transient_period == 3
        assert spec.corrupt_rate == 0.01
        assert spec.seed == 7
        spec = parse_fault_spec("rate=0.5,fail_pages=1+2+9")
        assert spec.transient_rate == 0.5
        assert spec.fail_pages == (1, 2, 9)
        with pytest.raises(ValueError):
            parse_fault_spec("nonsense=1")

    def test_epoch_rearms_page_triggers(self):
        spec = FaultSpec(seed=2, fail_pages=(0,), max_consecutive=1)
        plan = spec.build()
        with pytest.raises(TransientIOError):
            plan.on_read(0)
        plan.on_read(0)  # capped: second consecutive injection suppressed
        plan.new_epoch()
        with pytest.raises(TransientIOError):
            plan.on_read(0)


# ----------------------------------------------------------------------
# Error classification / retry / breaker / deadline primitives
# ----------------------------------------------------------------------
class TestPrimitives:
    def test_classification(self):
        assert is_retryable(TransientIOError("x"))
        assert is_retryable(CorruptPageError("x"))
        assert is_retryable(OSError("x"))
        assert not is_retryable(PageRangeError(9, 4))
        assert not is_retryable(DeadlineExceeded("x"))
        assert not is_retryable(CircuitOpenError("x"))
        assert is_breaker_fault(TransientIOError("x"))
        assert not is_breaker_fault(PageRangeError(9, 4))
        assert not is_breaker_fault(DeadlineExceeded("x"))

    def test_retries_mask_transients(self):
        calls = {"n": 0}

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise TransientIOError("try again")
            return "ok"

        state = RetryState()
        out = run_with_retries(
            flaky, RetryPolicy(max_retries=2), state, sleep=lambda _t: None
        )
        assert out == "ok"
        assert state.retries == 2 and state.exhausted == 0

    def test_retries_exhausted_raises_last(self):
        def always():
            raise TransientIOError("still broken")

        state = RetryState()
        with pytest.raises(TransientIOError):
            run_with_retries(
                always, RetryPolicy(max_retries=2), state,
                sleep=lambda _t: None,
            )
        assert state.exhausted == 1

    def test_non_retryable_propagates_immediately(self):
        calls = {"n": 0}

        def fatal():
            calls["n"] += 1
            raise PageRangeError(99, 10)

        with pytest.raises(PageRangeError):
            run_with_retries(
                fatal, RetryPolicy(max_retries=5), RetryState(),
                sleep=lambda _t: None,
            )
        assert calls["n"] == 1

    def test_backoff_is_deterministic(self):
        policy = RetryPolicy(max_retries=3, base_delay_s=0.01,
                             max_delay_s=1.0, jitter=0.5)
        delays = [policy.delay_for(i) for i in range(3)]
        assert delays == [policy.delay_for(i) for i in range(3)]
        assert delays[1] > delays[0] * 1.5  # exponential growth

    def test_breaker_lifecycle(self):
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            BreakerConfig(failure_threshold=2, reset_timeout_s=1.0),
            clock=lambda: now["t"],
        )
        breaker.allow()
        breaker.record_failure()
        breaker.allow()
        breaker.record_failure()  # threshold -> open
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        now["t"] = 2.0  # cooldown elapsed -> half-open probe
        breaker.allow()
        breaker.record_success()
        breaker.allow()  # closed again

    def test_force_open_pins_until_reset(self):
        now = {"t": 0.0}
        breaker = CircuitBreaker(
            BreakerConfig(reset_timeout_s=0.001), clock=lambda: now["t"]
        )
        breaker.force_open()
        now["t"] = 1e9  # no cooldown can reopen a forced breaker
        with pytest.raises(CircuitOpenError):
            breaker.allow()
        breaker.reset()
        breaker.allow()

    def test_deadline(self):
        now = {"t": 0.0}
        deadline = Deadline(0.5, clock=lambda: now["t"])
        deadline.check("start")
        assert deadline.remaining_s() == pytest.approx(0.5)
        now["t"] = 1.0
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check("refine")
        Deadline.unlimited().check("never")


# ----------------------------------------------------------------------
# Storage-layer validation (satellite b)
# ----------------------------------------------------------------------
class TestPageRangeValidation:
    def test_read_page_validates_range(self):
        disk = SimulatedDisk(DiskConfig(), n_pages=4)
        disk.read_page(3)
        with pytest.raises(PageRangeError) as err:
            disk.read_page(4)
        assert err.value.page_id == 4 and err.value.n_pages == 4
        with pytest.raises(PageRangeError):
            disk.read_page(-1)

    def test_pointfile_declares_its_pages(self, micro_points):
        pf = PointFile(micro_points)
        pf.fetch(np.array([0, len(micro_points) - 1]))
        with pytest.raises(PageRangeError):
            pf.disk.read_page(pf.num_pages)

    def test_faulty_disk_delegates_invalid_reads(self):
        inner = SimulatedDisk(DiskConfig(), n_pages=2)
        disk = FaultyDisk(inner, FaultSpec(seed=0, transient_rate=1.0,
                                           max_consecutive=10))
        with pytest.raises(PageRangeError):
            disk.read_page(7)
        assert disk.plan.attempts == 0  # invalid reads burn no schedule


# ----------------------------------------------------------------------
# Differential guarantee (tentpole acceptance)
# ----------------------------------------------------------------------
class TestEngineDifferential:
    @pytest.mark.parametrize("index_name", sorted(FAULT_INDEXES))
    @pytest.mark.parametrize("cache_kind", sorted(CACHE_BUILDERS))
    def test_masked_faults_bit_identical(
        self, micro_points, index_name, cache_kind
    ):
        queries = micro_points[::50] + 0.25
        clean_engine, clean_disk = build_engine(
            micro_points, index_name, cache_kind
        )
        truth = [clean_engine.search(q, 5) for q in queries]

        engine, disk = build_engine(
            micro_points, index_name, cache_kind,
            faults=MASKABLE, policy=RETRIES,
        )
        got = [engine.search(q, 5) for q in queries]
        injected = sum(disk.plan.counters.values())
        assert injected > 0, "fault mix never fired; test is vacuous"
        for t, g in zip(truth, got):
            assert np.array_equal(t.ids, g.ids)
            assert np.array_equal(t.distances, g.distances)
            assert np.array_equal(t.exact_mask, g.exact_mask)
            assert t.stats == g.stats
            assert g.outcome.complete
        # Retries must re-charge nothing: total I/O identical.
        assert disk.stats.page_reads == clean_disk.stats.page_reads

    def test_batched_matches_per_query_under_faults(self, micro_points):
        queries = micro_points[::50] + 0.25
        a_engine, _ = build_engine(
            micro_points, "vafile", "approx",
            faults=MASKABLE, policy=RETRIES,
        )
        per_query = [a_engine.search(q, 5) for q in queries]
        b_engine, _ = build_engine(
            micro_points, "vafile", "approx",
            faults=MASKABLE, policy=RETRIES,
        )
        for a, b in zip(per_query, b_engine.search_many(queries, 5)):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)
            assert a.stats == b.stats

    def test_unmasked_fault_without_policy_raises(self, micro_points):
        engine, _ = build_engine(
            micro_points, "linear", "approx",
            faults=FaultSpec(seed=0, transient_rate=1.0,
                             max_consecutive=1_000_000),
            policy=None,
        )
        with pytest.raises(OSError):
            for q in micro_points[::50] + 0.25:
                engine.search(q, 5)


# ----------------------------------------------------------------------
# Degraded answers
# ----------------------------------------------------------------------
class TestDegradedAnswers:
    def test_breaker_open_cache_only_recall(self, tiny_dataset, tiny_context):
        """Forced-open breaker: complete=False, recall clears the cost
        model's cache-only hit-ratio estimate, no spurious exceptions."""
        from repro.eval.methods import build_caching_pipeline

        cache_bytes = int(tiny_dataset.file_bytes * 0.1)
        pipeline = build_caching_pipeline(
            tiny_dataset, method="EXACT", cache_bytes=cache_bytes,
            k=10, context=tiny_context,
            resilience=ResiliencePolicy(retry=RetryPolicy()),
        )
        queries = tiny_dataset.query_log.test
        truth = [pipeline.search(q, 10) for q in queries]
        runtime = pipeline.engine.resilience
        runtime.breaker.force_open()
        try:
            degraded = [pipeline.search(q, 10) for q in queries]
        finally:
            runtime.breaker.reset()

        recalls, n_degraded = [], 0
        for t, d in zip(truth, degraded):
            if t.stats.refine_page_reads == 0:
                # No refinement I/O -> the breaker is never consulted and
                # the answer must still be complete and exact.
                assert d.outcome.complete
                assert np.array_equal(t.ids, d.ids)
            else:
                assert not d.outcome.complete
                assert d.outcome.reason == "breaker_open"
                # Exact-cache hits are certified exact in the answer.
                assert np.all(d.distances[d.exact_mask] >= 0)
                n_degraded += 1
            recalls.append(
                len(np.intersect1d(t.ids, d.ids)) / max(1, len(t.ids))
            )
        assert n_degraded, "no query exercised the degraded path"
        # Workload recall@k must clear the cost model's cache-only
        # hit-ratio estimate: the cache holds (at least) that fraction
        # of the relevant mass, and degraded answers rank it exactly.
        model = tiny_context.cost_model()
        bound = model.hit_ratio(model.exact_items_for(cache_bytes))
        assert float(np.mean(recalls)) >= bound
        assert runtime.degraded_counts.get("breaker_open", 0) == n_degraded

    def test_deadline_zero_degrades_every_query(self, micro_points):
        engine, _ = build_engine(micro_points, "linear", "approx",
                                 policy=ResiliencePolicy(deadline_s=0.0))
        for q in micro_points[::80]:
            result = engine.search(q, 5)
            assert not result.outcome.complete
            assert result.outcome.reason == "deadline"

    def test_explicit_deadline_overrides_policy(self, micro_points):
        engine, _ = build_engine(micro_points, "linear", "approx",
                                 policy=ResiliencePolicy(deadline_s=0.0))
        result = engine.search(
            micro_points[0] + 0.1, 5, deadline=Deadline(60.0)
        )
        assert result.outcome.complete

    def test_degraded_false_propagates(self, micro_points):
        engine, _ = build_engine(
            micro_points, "linear", "approx",
            policy=ResiliencePolicy(deadline_s=0.0, degraded=False),
        )
        with pytest.raises(DeadlineExceeded):
            engine.search(micro_points[0] + 0.1, 5)

    def test_degraded_answer_ordering_and_certificate(self):
        """Confirmed fill first; hits precede misses; certificate = gap."""
        from repro.core.reduction import ReductionOutcome

        inf = float("inf")
        reduction = ReductionOutcome(
            remaining_ids=np.array([10, 11, 12]),
            remaining_lb=np.array([0.5, 0.0, 2.0]),
            remaining_ub=np.array([2.5, inf, 3.0]),
            confirmed_ids=np.array([3]),
            confirmed_lb=np.array([1.0]),
            confirmed_ub=np.array([1.0]),
            pruned_ids=np.empty(0, dtype=np.int64),
            lb_k=0.0,
            ub_k=inf,
            num_hits=3,
        )
        ids, dist, exact, outcome = degraded_answer(reduction, 3, "deadline")
        assert list(ids) == [3, 10, 12]  # miss 11 loses to both hits
        assert dist[0] == 1.0 and exact[0]
        assert not outcome.complete
        assert outcome.max_bound_error == pytest.approx(2.0)

        ids, dist, exact, outcome = degraded_answer(reduction, 4, "deadline")
        assert list(ids) == [3, 10, 12, 11]
        assert outcome.max_bound_error == inf  # a blind slot -> inf

        ids, _, _, outcome = degraded_answer(None, 5, "io_failure")
        assert ids.size == 0 and outcome.max_bound_error == inf


class TestQueueWaitBudget:
    """Queue wait is charged against the per-query budget.

    A served request's :class:`Deadline` starts at *admission*; if it
    then sits in a queue past its budget, the expiry must bite between
    the wait and the first phase — not be silently forgiven by a budget
    that restarts at dispatch.
    """

    def test_expiry_between_wait_and_phase_execution(self, micro_points):
        from repro.serve import ManualClock

        engine, _ = build_engine(micro_points, "linear", "approx",
                                 policy=ResiliencePolicy())
        clock = ManualClock()
        deadline = Deadline(0.010, clock=clock.now)  # admission
        clock.advance(0.011)  # queue wait alone exceeds the budget
        assert deadline.expired and deadline.elapsed_s() == pytest.approx(0.011)
        result = engine.search(micro_points[0] + 0.1, 5, deadline=deadline)
        assert not result.outcome.complete
        assert result.outcome.reason == "deadline"

    def test_wait_within_budget_serves_complete(self, micro_points):
        from repro.serve import ManualClock

        engine, _ = build_engine(micro_points, "linear", "approx",
                                 policy=ResiliencePolicy())
        clock = ManualClock()
        deadline = Deadline(0.010, clock=clock.now)
        clock.advance(0.004)
        result = engine.search(micro_points[0] + 0.1, 5, deadline=deadline)
        assert result.outcome.complete

    def test_per_query_deadlines_through_batched_path(self, micro_points):
        from repro.serve import ManualClock

        engine, _ = build_engine(micro_points, "linear", "approx",
                                 policy=ResiliencePolicy())
        clock = ManualClock()
        expired = Deadline(0.001, clock=clock.now)
        clock.advance(0.002)
        fresh = Deadline(60.0, clock=clock.now)
        queries = np.stack([micro_points[0] + 0.1, micro_points[1] + 0.1])
        results = engine.search_many(queries, 5, deadline=[expired, fresh])
        assert not results[0].outcome.complete
        assert results[0].outcome.reason == "deadline"
        assert results[1].outcome.complete

    def test_deadline_count_mismatch_rejected(self, micro_points):
        engine, _ = build_engine(micro_points, "linear", "approx")
        with pytest.raises(ValueError, match="deadlines"):
            engine.search_many(micro_points[:3], 5, deadline=[None])

    def test_server_charges_queue_wait(self, micro_points):
        """End to end: a request expiring while queued is answered
        without the engine ever running."""
        from repro.serve import ManualClock, ServeConfig, Server, SlaTier

        engine, _ = build_engine(micro_points, "linear", "approx")
        clock = ManualClock()
        server = Server(
            engine,
            config=ServeConfig(
                max_batch=8, tiers=(SlaTier("gold", deadline_ms=10.0),)
            ),
            default_k=5,
            clock=clock,
        )
        ticket = server.submit(micro_points[0] + 0.1, tier="gold")
        clock.advance(0.011)  # expire mid-queue
        server.drain()
        server.close()
        response = ticket.response
        assert response.degraded
        assert response.result.outcome.reason == "deadline"
        # Dispatch-time expiry short-circuits: no candidates generated.
        assert response.result.stats.num_candidates == 0


# ----------------------------------------------------------------------
# Sharded execution under faults
# ----------------------------------------------------------------------
class TestShardedFaults:
    @pytest.fixture(scope="class")
    def shard_setup(self, micro_points):
        rng = np.random.default_rng(3)
        return {
            "points": micro_points,
            "queries": micro_points[::50] + 0.25,
            "cache_spec": {
                "kind": "approx",
                "capacity_bytes": 1 << 12,
                "policy": "hff",
                "encoder": make_encoder_for(micro_points),
            },
            "frequencies": rng.random(len(micro_points)),
        }

    def _build(self, setup, faults=None, policy=None, **kwargs):
        from repro.shard import build_shard_specs, make_sharded_engine

        specs = build_shard_specs(
            setup["points"], 3, index_name="linear",
            cache_spec=setup["cache_spec"],
            frequencies=setup["frequencies"],
            faults=faults, resilience=policy,
        )
        return make_sharded_engine(specs, **kwargs)

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_masked_faults_bit_identical_across_executors(
        self, shard_setup, executor
    ):
        with self._build(shard_setup, executor="serial") as clean:
            truth = clean.search_many(shard_setup["queries"], 5)
        with self._build(
            shard_setup, faults=MASKABLE, policy=RETRIES, executor=executor
        ) as engine:
            got = engine.search_many(shard_setup["queries"], 5)
        for t, g in zip(truth, got):
            assert np.array_equal(t.ids, g.ids)
            assert np.array_equal(t.distances, g.distances)
            assert t.stats == g.stats
            assert g.outcome.complete

    def test_degraded_merge_of_surviving_shards(self, shard_setup):
        """One shard's disk is beyond saving: the coordinator reports an
        incomplete merge of the other two instead of failing."""
        import dataclasses

        from repro.shard import build_shard_specs, make_sharded_engine

        unmaskable = FaultSpec(
            seed=3, transient_rate=1.0, max_consecutive=1_000_000
        )
        strict = ResiliencePolicy(
            retry=RetryPolicy(max_retries=0), degraded=False
        )
        specs = build_shard_specs(
            shard_setup["points"], 3, index_name="linear",
            cache_spec=shard_setup["cache_spec"],
            frequencies=shard_setup["frequencies"],
        )
        specs = [
            dataclasses.replace(
                s,
                faults=unmaskable if s.shard_id == 1 else None,
                resilience=strict,
            )
            for s in specs
        ]
        dead = set(specs[1].member_ids)
        with make_sharded_engine(
            specs, executor="serial", degraded=True
        ) as engine:
            results = engine.search_many(shard_setup["queries"], 5)
        for r in results:
            assert not r.outcome.complete
            assert r.outcome.reason == "shard_failure"
            assert r.outcome.shards_failed == 1
            assert r.outcome.shards_total == 3
            assert not (set(r.ids) & dead)

    def test_coordinator_deadline_degrades(self, shard_setup):
        with self._build(
            shard_setup, executor="serial", degraded=True, deadline_s=0.0
        ) as engine:
            results = engine.search_many(shard_setup["queries"], 5)
        for r in results:
            assert not r.outcome.complete
            assert r.outcome.reason == "deadline"

    def test_coordinator_deadline_strict_raises(self, shard_setup):
        with self._build(
            shard_setup, executor="serial", degraded=False, deadline_s=0.0
        ) as engine:
            with pytest.raises(DeadlineExceeded):
                engine.search_many(shard_setup["queries"], 5)


def make_encoder_for(points):
    from repro.core.builders import build_equidepth
    from repro.core.domain import ValueDomain
    from repro.core.encoder import GlobalHistogramEncoder

    dom = ValueDomain.from_points(points)
    return GlobalHistogramEncoder(build_equidepth(dom, 16), points.shape[1])


# ----------------------------------------------------------------------
# Global chaos mode (satellite e: the CI chaos job's mechanism)
# ----------------------------------------------------------------------
class TestChaosMode:
    @pytest.fixture()
    def chaos_env(self, monkeypatch, tmp_path):
        import repro.faults.chaos as chaos

        out = tmp_path / "chaos.json"
        monkeypatch.setenv("REPRO_CHAOS", "rate=0.2,corrupt_rate=0.1,seed=5")
        monkeypatch.setenv("REPRO_CHAOS_OUT", str(out))
        monkeypatch.setattr(chaos, "_monitor", None)
        yield out
        monkeypatch.setattr(chaos, "_monitor", None)

    def test_chaos_masks_itself(self, chaos_env, micro_points):
        """With REPRO_CHAOS set, every read succeeds (the monitor retries
        internally) while the injection counters advance."""
        from repro.faults.chaos import chaos_from_env

        pf = PointFile(micro_points)
        pf.fetch(np.arange(64))
        monitor = chaos_from_env()
        snap = monitor.snapshot()
        assert snap["attempts"] > 0
        assert sum(snap["injected"].values()) > 0
        assert snap["masked_by_internal_retry"] >= sum(
            snap["injected"].values()
        )

    def test_chaos_leaves_results_identical(self, chaos_env, micro_points):
        queries = micro_points[::80] + 0.25
        engine, _ = build_engine(micro_points, "linear", "approx")
        chaotic = [engine.search(q, 5) for q in queries]
        # Fresh, chaos-free engine for the ground truth.
        import repro.faults.chaos as chaos
        import os

        del os.environ["REPRO_CHAOS"]
        chaos._monitor = None
        clean_engine, _ = build_engine(micro_points, "linear", "approx")
        truth = [clean_engine.search(q, 5) for q in queries]
        for t, g in zip(truth, chaotic):
            assert np.array_equal(t.ids, g.ids)
            assert np.array_equal(t.distances, g.distances)
            assert t.stats == g.stats

    def test_chaos_dump_written_at_exit(self, chaos_env, micro_points):
        """The atexit dump is registered; exercise _dump directly."""
        from repro.faults.chaos import _dump, chaos_from_env
        import json

        PointFile(micro_points).fetch(np.arange(16))
        _dump(chaos_from_env(), str(chaos_env))
        payload = json.loads(chaos_env.read_text())
        assert payload["attempts"] > 0
        assert "injected" in payload and "spec" in payload
