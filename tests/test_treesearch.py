"""Direct unit tests of the shared cached-leaf search machinery."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import LeafNodeCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.index.treesearch import cached_leaf_knn
from repro.storage.iostats import QueryIOTracker


def _make_world(n_leaves=8, per_leaf=10, d=4, seed=0):
    rng = np.random.default_rng(seed)
    points = np.rint(rng.uniform(0, 255, size=(n_leaves * per_leaf, d)))
    leaves = {
        i: np.arange(i * per_leaf, (i + 1) * per_leaf, dtype=np.int64)
        for i in range(n_leaves)
    }

    def contents(leaf_id):
        return leaves[leaf_id], points[leaves[leaf_id]]

    def pages(leaf_id):
        return leaf_id, 1

    def stream(query):
        bounds = []
        for i, ids in leaves.items():
            d_all = np.linalg.norm(points[ids] - query, axis=1)
            bounds.append((float(d_all.min()), i))
        return iter(sorted(bounds))

    return points, contents, pages, stream


class TestUncached:
    def test_exact_and_counts(self):
        points, contents, pages, stream = _make_world()
        q = points[7] + 0.3
        tracker = QueryIOTracker()
        result = cached_leaf_knn(q, 5, stream(q), contents, pages, tracker=tracker)
        d = np.linalg.norm(points - q, axis=1)
        kth = np.sort(d)[4]
        assert np.all(d[result.ids] <= kth + 1e-9)
        assert result.stats.leaf_fetches == tracker.page_reads
        assert result.stats.cached_leaf_hits == 0

    def test_stops_early(self):
        """With tight leaves the search must not fetch every leaf."""
        points, contents, pages, stream = _make_world(n_leaves=16, seed=3)
        q = points[0]
        result = cached_leaf_knn(q, 1, stream(q), contents, pages,
                                 tracker=QueryIOTracker())
        assert result.stats.leaf_fetches < 16

    def test_k_exceeds_points(self):
        points, contents, pages, stream = _make_world(n_leaves=2, per_leaf=3)
        q = points[0]
        result = cached_leaf_knn(q, 50, stream(q), contents, pages,
                                 tracker=QueryIOTracker())
        assert len(result.ids) == 6

    def test_empty_stream(self):
        result = cached_leaf_knn(
            np.zeros(3), 4, iter([]), None, None, tracker=QueryIOTracker()
        )
        assert result.ids.size == 0

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            cached_leaf_knn(np.zeros(2), 0, iter([]), None, None)


class TestCached:
    def _cache(self, points, contents, leaf_ids):
        dom = ValueDomain.from_points(points)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 32), points.shape[1])
        cache = LeafNodeCache(enc, 1 << 16)
        for leaf in leaf_ids:
            ids, pts = contents(leaf)
            cache.try_add(leaf, ids, pts)
        return cache

    def test_cached_leaves_defer_io(self):
        points, contents, pages, stream = _make_world(seed=5)
        cache = self._cache(points, contents, range(8))
        q = points[33] + 0.2
        t = QueryIOTracker()
        result = cached_leaf_knn(q, 3, stream(q), contents, pages,
                                 cache=cache, tracker=t)
        d = np.linalg.norm(points - q, axis=1)
        kth = np.sort(d)[2]
        assert np.all(d[result.ids] <= kth + 1e-9)
        assert result.stats.cached_leaf_hits > 0
        # Caching every leaf must save fetches vs the 8-leaf worst case.
        assert result.stats.leaf_fetches < 8
        assert result.stats.deferred_fetches == result.stats.leaf_fetches

    def test_partial_cache_mixes_paths(self):
        points, contents, pages, stream = _make_world(seed=6)
        cache = self._cache(points, contents, [0, 2, 4])
        q = points[50]
        result = cached_leaf_knn(q, 4, stream(q), contents, pages,
                                 cache=cache, tracker=QueryIOTracker())
        d = np.linalg.norm(points - q, axis=1)
        kth = np.sort(d)[3]
        assert np.all(d[result.ids] <= kth + 1e-9)

    def test_exact_leaf_cache_zero_deferrals_possible(self):
        points, contents, pages, stream = _make_world(seed=7)
        cache = LeafNodeCache(None, 1 << 20, exact=True)
        for leaf in range(8):
            ids, pts = contents(leaf)
            cache.try_add(leaf, ids, pts)
        q = points[11]
        result = cached_leaf_knn(q, 2, stream(q), contents, pages,
                                 cache=cache, tracker=QueryIOTracker())
        # Exact bounds decide everything: results are exact with zero or
        # minimal fetches (a fetch only to materialize result rows).
        d = np.linalg.norm(points - q, axis=1)
        kth = np.sort(d)[1]
        assert np.all(d[result.ids] <= kth + 1e-9)
