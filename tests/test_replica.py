"""Supervised replica pool: failover, hedging, crash-safe recovery.

Everything here runs on a ``ManualClock`` with the inline executor and
the *sync* pool — every crash, stall, hedge, quarantine and restart is
a deterministic function of the injected fault schedule and the clock,
with no real sleeps.  The one threaded test at the end smokes the
``parallel=True`` + ``ThreadedExecutor`` production mode on a real
clock.

The acceptance property (kill a replica mid-stream): every accepted
request completes exactly once, answers are bit-identical to a
no-fault twin, and the pool returns to full health within the backoff
schedule.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import ApproximateCache, CachePolicy
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.engine.engine import QueryEngine
from repro.faults.plan import FaultSpec
from repro.index.linear_scan import LinearScanIndex
from repro.obs.registry import MetricsRegistry
from repro.obs.reporter import serve_summary
from repro.serve import (
    BatchHold,
    FaultyReplica,
    ManualClock,
    RealClock,
    ReplicaCrashError,
    ReplicaPool,
    ReplicaPoolConfig,
    ServeConfig,
    Server,
    SlaTier,
    ThreadedExecutor,
)
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

SEED = 20260808
N_POINTS = 200
DIM = 4
K = 5
CACHE_BYTES = 1 << 11


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(N_POINTS, DIM))
    queries = rng.normal(size=(24, DIM))
    frequencies = rng.integers(0, 9, size=N_POINTS).astype(np.int64)
    return {"points": points, "queries": queries, "frequencies": frequencies}


def make_engine(data) -> QueryEngine:
    """One replica engine; identical construction => identical answers."""
    points = data["points"]
    encoder = GlobalHistogramEncoder(
        build_equidepth(ValueDomain.from_points(points), 16), DIM
    )
    cache = ApproximateCache(encoder, CACHE_BYTES, N_POINTS, CachePolicy.HFF)
    cache.populate_hff(data["frequencies"], points)
    point_file = PointFile(points, disk=SimulatedDisk(DiskConfig()))
    return QueryEngine.for_index(LinearScanIndex(N_POINTS), point_file, cache)


@pytest.fixture(scope="module")
def baseline(data):
    """The no-fault twin's answers (per-query ground truth)."""
    engine = make_engine(data)
    return [engine.search(q, K) for q in data["queries"]]


def make_pool_server(data, engines, pool_config=None, **kwargs):
    clock = kwargs.pop("clock", None) or ManualClock()
    metrics = kwargs.pop("metrics", None)
    if metrics is None:
        metrics = MetricsRegistry()
    config = kwargs.pop("config", None) or ServeConfig(
        max_queue_depth=64, max_batch=4, max_wait_us=1000.0
    )
    pool = ReplicaPool(engines, config=pool_config)
    server = Server(
        pool, config=config, default_k=K, clock=clock, metrics=metrics,
        **kwargs,
    )
    return server, pool, clock, metrics


def assert_same_result(response, base, where=""):
    result = response.result
    assert np.array_equal(result.ids, base.ids), where
    assert np.array_equal(result.distances, base.distances), where
    assert np.array_equal(result.exact_mask, base.exact_mask), where


# ----------------------------------------------------------------------
# Config
# ----------------------------------------------------------------------
class TestReplicaPoolConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"stall_budget_s": 0.0},
            {"hedge_delay_s": -1.0},
            {"failure_threshold": 0},
            {"restart_base_s": -0.1},
            {"heartbeat_interval_s": 0.0},
            {"max_redispatch": -1},
            {"tier_stall_budget_s": {"gold": 0.0}},
        ],
    )
    def test_invalid_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ReplicaPoolConfig(**kwargs)

    def test_tightest_tier_stall_budget_wins(self):
        config = ReplicaPoolConfig(
            stall_budget_s=1.0,
            tier_stall_budget_s={"gold": 0.2, "batch": 5.0},
        )
        assert config.stall_budget_for(["default"]) == 1.0
        assert config.stall_budget_for(["batch", "gold"]) == 0.2
        assert config.stall_budget_for(["batch"]) == 5.0
        assert config.stall_budget_for([]) == 1.0

    def test_from_section_converts_milliseconds(self):
        from repro.spec.sections import ReplicaSection

        section = ReplicaSection(
            enabled=True,
            n_replicas=3,
            stall_budget_ms=500.0,
            hedge_delay_ms=30.0,
            failure_threshold=2,
            restart_backoff_ms=20.0,
            restart_max_backoff_ms=640.0,
            heartbeat_interval_ms=100.0,
            max_redispatch=5,
            tier_stall_budget_ms={"gold": 50.0},
        )
        config = ReplicaPoolConfig.from_section(section)
        assert config.stall_budget_s == pytest.approx(0.5)
        assert config.hedge_delay_s == pytest.approx(0.03)
        assert config.failure_threshold == 2
        assert config.restart_base_s == pytest.approx(0.02)
        assert config.restart_max_s == pytest.approx(0.64)
        assert config.heartbeat_interval_s == pytest.approx(0.1)
        assert config.max_redispatch == 5
        assert config.tier_stall_budget_s["gold"] == pytest.approx(0.05)

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            ReplicaPool([])


# ----------------------------------------------------------------------
# FaultyReplica schedules
# ----------------------------------------------------------------------
class TestFaultyReplica:
    def test_transparent_when_fault_free(self, data, baseline):
        faulty = FaultyReplica(make_engine(data))
        results = faulty.search_many(data["queries"][:4], K)
        for result, base in zip(results, baseline[:4]):
            assert np.array_equal(result.ids, base.ids)
            assert np.array_equal(result.distances, base.distances)
        assert faulty.batches == 1

    def test_crash_schedule_is_one_shot(self, data):
        faulty = FaultyReplica(make_engine(data), crash_batches=(2,))
        faulty.search_many(data["queries"][:2], K)
        with pytest.raises(ReplicaCrashError):
            faulty.search_many(data["queries"][:2], K)
        assert faulty.crashes == 1
        # Batch 3 works again (a restarted replica serves).
        results = faulty.search_many(data["queries"][:2], K)
        assert len(results) == 2

    def test_stall_and_slow_return_holds(self, data):
        faulty = FaultyReplica(
            make_engine(data), stall_batches=(1,), slow_batches={2: 0.75}
        )
        hold = faulty.search_many(data["queries"][:2], K)
        assert isinstance(hold, BatchHold)
        assert hold.delay_s is None and hold.results is None
        slow = faulty.search_many(data["queries"][:2], K)
        assert isinstance(slow, BatchHold)
        assert slow.delay_s == pytest.approx(0.75)
        assert len(slow.results) == 2  # results computed eagerly, held

    def test_ping_failure_schedule(self, data):
        faulty = FaultyReplica(make_engine(data), fail_pings=(2,))
        faulty.ping()
        with pytest.raises(ReplicaCrashError):
            faulty.ping()
        faulty.ping()
        assert faulty.pings == 3

    def test_fault_spec_drives_crashes_and_stalls(self, data):
        # transient_period=2: attempts 2, 4, ... raise -> replica crash.
        faulty = FaultyReplica(
            make_engine(data), spec=FaultSpec(transient_period=2)
        )
        faulty.search_many(data["queries"][:2], K)
        with pytest.raises(ReplicaCrashError):
            faulty.search_many(data["queries"][:2], K)
        # stall_period=2: every second attempt stalls (a hold, no sleep).
        stalling = FaultyReplica(
            make_engine(data), spec=FaultSpec(stall_period=2, stall_s=3.0)
        )
        stalling.search_many(data["queries"][:2], K)
        hold = stalling.search_many(data["queries"][:2], K)
        assert isinstance(hold, BatchHold)
        assert hold.delay_s is None

    def test_fault_spec_latency_becomes_slow_hold(self, data):
        faulty = FaultyReplica(
            make_engine(data),
            spec=FaultSpec(latency_rate=1.0, latency_s=0.5),
        )
        hold = faulty.search_many(data["queries"][:2], K)
        assert isinstance(hold, BatchHold)
        assert hold.delay_s == pytest.approx(0.5)
        assert len(hold.results) == 2


# ----------------------------------------------------------------------
# The acceptance test: kill a replica mid-stream
# ----------------------------------------------------------------------
class TestKillReplicaMidStream:
    def test_exactly_once_bit_identical_and_recovered(self, data, baseline):
        queries = data["queries"]
        server, pool, clock, metrics = make_pool_server(
            data,
            [
                FaultyReplica(make_engine(data), crash_batches=(1,)),
                make_engine(data),
            ],
            pool_config=ReplicaPoolConfig(
                stall_budget_s=0.5, restart_base_s=0.05
            ),
        )
        tickets = [server.submit(q) for q in queries]
        served = server.pump(force=True)

        # Every accepted request completed exactly once.
        assert served == len(queries)
        assert all(t.done for t in tickets)
        assert metrics.value(
            "serve_requests_total", tier="default"
        ) == len(queries)
        assert metrics.value(
            "serve_completion_discarded_total", tier="default"
        ) == 0

        # Bit-identical to the no-fault twin, crash or not.
        for i, (ticket, base) in enumerate(zip(tickets, baseline)):
            assert ticket.response.result.outcome.complete
            assert_same_result(ticket.response, base, where=f"query {i}")

        # The crash quarantined replica 0 and failed its batch over.
        assert pool.healthy_count == 1
        assert pool.quarantined_count == 1
        assert metrics.value("serve_failover_total") == 1
        assert metrics.value(
            "serve_replica_crash_total", replica="0"
        ) == 1
        assert metrics.value(
            "serve_redispatch_total", tier="default"
        ) == 4  # the crashed batch's requests, re-enqueued at the front

        # Full health returns within the backoff schedule: one crash ->
        # one base cool-down, after which the heartbeat probe restarts
        # the replica.  No real sleeps — the ManualClock does the waiting.
        clock.advance(0.05 + 0.25)  # cool-down + heartbeat interval
        server.pump(force=True)
        assert pool.healthy_count == 2
        assert metrics.value(
            "serve_replica_restart_total", replica="0"
        ) == 1
        assert metrics.value("serve_replicas_healthy") == 2
        server.close()

    def test_recovered_requests_jump_the_queue(self, data, baseline):
        """Failover preserves FIFO: recovered requests flush first."""
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), crash_batches=(1,)),
             make_engine(data)],
        )
        tickets = [server.submit(q) for q in data["queries"][:8]]
        server.pump(force=True)
        # The first four (crashed, recovered) still completed, and their
        # queue wait reflects re-dispatch, not losing their place.
        for ticket, base in zip(tickets, baseline):
            assert_same_result(ticket.response, base)
        assert metrics.value(
            "serve_redispatch_total", tier="default"
        ) == 4
        server.close()


# ----------------------------------------------------------------------
# Stall detection
# ----------------------------------------------------------------------
class TestStallDetection:
    def test_stalled_batch_quarantines_and_recovers(self, data, baseline):
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), stall_batches=(1,)),
             make_engine(data)],
            pool_config=ReplicaPoolConfig(stall_budget_s=0.5),
        )
        tickets = [server.submit(q) for q in data["queries"][:4]]
        server.pump(force=True)
        # The drain advanced the clock exactly to the stall budget —
        # escalation, not patience.
        assert clock.now() == pytest.approx(0.5)
        for ticket, base in zip(tickets, baseline):
            assert_same_result(ticket.response, base)
        assert metrics.value("serve_replica_stall_total", replica="0") == 1
        assert pool.quarantined_count == 1
        server.close()

    def test_tightest_tier_budget_bounds_the_wait(self, data):
        config = ServeConfig(
            max_queue_depth=64, max_batch=4, max_wait_us=1000.0,
            tiers=(SlaTier("gold"),),
        )
        server, pool, clock, _ = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), stall_batches=(1,)),
             make_engine(data)],
            pool_config=ReplicaPoolConfig(
                stall_budget_s=5.0, tier_stall_budget_s={"gold": 0.1}
            ),
            config=config,
        )
        for q in data["queries"][:4]:
            server.submit(q, tier="gold")
        server.pump(force=True)
        assert clock.now() == pytest.approx(0.1)
        server.close()

    def test_slow_but_scheduled_batch_is_not_a_stall(self, data, baseline):
        """A hold with a reveal time completes; the budget ignores it."""
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), slow_batches={1: 0.3})],
            pool_config=ReplicaPoolConfig(stall_budget_s=10.0),
        )
        tickets = [server.submit(q) for q in data["queries"][:4]]
        server.pump(force=True)
        assert clock.now() == pytest.approx(0.3)
        for ticket, base in zip(tickets, baseline):
            assert_same_result(ticket.response, base)
        assert metrics.value("serve_replica_stall_total", replica="0") == 0
        assert pool.healthy_count == 1
        server.close()


# ----------------------------------------------------------------------
# Hedged dispatch
# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_wins_loser_discarded(self, data, baseline):
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), slow_batches={1: 2.0}),
             make_engine(data)],
            pool_config=ReplicaPoolConfig(
                stall_budget_s=10.0, hedge_delay_s=0.3
            ),
        )
        tickets = [server.submit(q) for q in data["queries"][:4]]
        server.pump(force=True)
        assert all(t.done for t in tickets)
        for ticket, base in zip(tickets, baseline):
            assert ticket.response.result.outcome.complete
            assert_same_result(ticket.response, base)
        # Each of the four slow requests was hedged onto the idle
        # replica and the hedge won; the slow copy's reveal at t=2.0
        # lost the at-most-once guard and was discarded — counted, never
        # double-served.
        assert metrics.value("serve_hedge_total") == 4
        assert metrics.value("serve_hedge_win_total") == 4
        assert metrics.value(
            "serve_completion_discarded_total", tier="default"
        ) == 4
        assert metrics.value(
            "serve_requests_total", tier="default"
        ) == 4
        # The slow replica is not punished: its batch completed (late).
        assert pool.healthy_count == 2
        server.close()

    def test_no_hedging_when_disabled(self, data):
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), slow_batches={1: 0.4}),
             make_engine(data)],
            pool_config=ReplicaPoolConfig(
                stall_budget_s=10.0, hedge_delay_s=0.0
            ),
        )
        for q in data["queries"][:4]:
            server.submit(q)
        server.pump(force=True)
        assert metrics.value("serve_hedge_total") == 0
        assert clock.now() == pytest.approx(0.4)
        server.close()


# ----------------------------------------------------------------------
# Brownout and re-dispatch exhaustion
# ----------------------------------------------------------------------
class TestDegradedModes:
    def test_all_replicas_down_brownout(self, data):
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), crash_batches=range(1, 100))],
            pool_config=ReplicaPoolConfig(restart_base_s=0.1),
        )
        tickets = [server.submit(q) for q in data["queries"][:6]]
        server.pump(force=True)
        for ticket in tickets:
            result = ticket.response.result
            assert not result.outcome.complete
            assert result.outcome.reason == "brownout"
            assert np.all(result.ids == -1) or len(result.ids) == 0 or (
                not result.exact_mask.any()
            )
        assert metrics.value("serve_brownout_total", tier="default") == 6
        assert pool.healthy_count == 0
        server.close()

    def test_redispatch_budget_exhaustion(self, data):
        # max_redispatch=0: one crash already exceeds the budget, and
        # the healthy twin means brownout never kicks in first.
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), crash_batches=(1,)),
             make_engine(data)],
            pool_config=ReplicaPoolConfig(max_redispatch=0),
        )
        tickets = [server.submit(q) for q in data["queries"][:4]]
        server.pump(force=True)
        for ticket in tickets:
            result = ticket.response.result
            assert not result.outcome.complete
            assert result.outcome.reason == "replica_failure"
        assert metrics.value(
            "serve_degraded_total", tier="default"
        ) == 4
        server.close()

    def test_brownout_lifts_after_cooldown(self, data, baseline):
        """Requests submitted after the cool-down are served normally."""
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), crash_batches=(1,))],
            pool_config=ReplicaPoolConfig(restart_base_s=0.1),
        )
        first = [server.submit(q) for q in data["queries"][:4]]
        server.pump(force=True)
        assert all(
            t.response.result.outcome.reason == "brownout" for t in first
        )
        clock.advance(0.5)
        second = [server.submit(q) for q in data["queries"][:4]]
        server.pump(force=True)
        for ticket, base in zip(second, baseline):
            assert ticket.response.result.outcome.complete
            assert_same_result(ticket.response, base)
        server.close()


# ----------------------------------------------------------------------
# Quarantine backoff and heartbeats
# ----------------------------------------------------------------------
class TestSupervision:
    def test_exponential_backoff_doubles_and_caps(self, data):
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), fail_pings=range(1, 10))],
            pool_config=ReplicaPoolConfig(
                restart_base_s=0.1, restart_max_s=0.4,
                heartbeat_interval_s=0.05,
            ),
        )
        replica = pool.replicas[0]
        delays = []
        for _ in range(4):
            # Wait out the heartbeat interval and any cool-down, then
            # pump: the probe ping fails and re-quarantines.
            clock.advance(
                max(0.05, replica.retry_at - clock.now() + 0.05)
            )
            server.pump()
            delays.append(replica.retry_at - clock.now())
        # 0.1, 0.2, 0.4, then capped at 0.4.
        assert delays[0] == pytest.approx(0.1, abs=0.02)
        assert delays[1] == pytest.approx(0.2, abs=0.04)
        assert delays[2] == pytest.approx(0.4, abs=0.08)
        assert delays[3] <= 0.4 + 1e-9
        assert replica.open_count == 4
        server.close()

    def test_heartbeat_recovery_resets_backoff(self, data):
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), fail_pings=(1,))],
            pool_config=ReplicaPoolConfig(
                restart_base_s=0.1, heartbeat_interval_s=0.05
            ),
        )
        replica = pool.replicas[0]
        clock.advance(0.06)
        server.pump()  # ping #1 fails -> quarantine
        assert pool.quarantined_count == 1
        clock.advance(0.2)
        server.pump()  # cooled down: probe ping succeeds -> healthy
        assert pool.healthy_count == 1
        assert replica.open_count == 0  # backoff index reset on recovery
        assert metrics.value(
            "serve_replica_restart_total", replica="0"
        ) == 1
        # Recovery time observed on the histogram.
        recovery = metrics.get("serve_recovery_seconds")
        assert recovery is not None and recovery.count == 1
        server.close()

    def test_parallel_pool_requires_real_clock(self, data):
        pool = ReplicaPool([make_engine(data)], parallel=True)
        with pytest.raises(TypeError, match="RealClock"):
            Server(pool, clock=ManualClock())

    def test_single_healthy_replica_matches_plain_server(
        self, data, baseline
    ):
        """A pool of one with no faults is just the server, bit for bit."""
        server, pool, clock, metrics = make_pool_server(
            data, [make_engine(data)]
        )
        tickets = [server.submit(q) for q in data["queries"]]
        server.pump(force=True)
        for ticket, base in zip(tickets, baseline):
            assert_same_result(ticket.response, base)
        assert metrics.value("serve_failover_total") == 0
        server.close()


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------
class TestReplicaSummary:
    def test_serve_summary_includes_pool_block(self, data):
        server, pool, clock, metrics = make_pool_server(
            data,
            [FaultyReplica(make_engine(data), crash_batches=(1,)),
             make_engine(data)],
            pool_config=ReplicaPoolConfig(restart_base_s=0.05),
        )
        for q in data["queries"][:8]:
            server.submit(q)
        server.pump(force=True)
        clock.advance(0.5)
        server.pump(force=True)  # heartbeat restores full health
        summary = serve_summary(metrics)
        block = summary["replicas"]
        assert block["healthy"] == 2
        assert block["quarantined"] == 0
        assert block["failovers"] == 1
        assert block["crashes"] == 1
        assert block["restarts"] == 1
        assert block["recoveries"] == 1
        assert block["recovery_p50_s"] > 0
        server.close()

    def test_no_pool_no_block(self, data):
        engine = make_engine(data)
        metrics = MetricsRegistry()
        server = Server(
            engine, default_k=K, clock=ManualClock(), metrics=metrics
        )
        server.serve_one(data["queries"][0])
        assert "replicas" not in serve_summary(metrics)
        server.close()


# ----------------------------------------------------------------------
# Spec / factory integration
# ----------------------------------------------------------------------
class TestSpecIntegration:
    def test_server_from_spec_builds_pool(self):
        from repro.serve import server_from_spec
        from repro.spec import (
            DatasetSection, PipelineSpec, ReplicaSection, ServeSection,
        )

        spec = PipelineSpec(
            dataset=DatasetSection(name="tiny", seed=3),
            serve=ServeSection(enabled=True, max_batch=4),
            replica=ReplicaSection(enabled=True, n_replicas=2),
            k=K,
        )
        server, pipeline = server_from_spec(spec, clock=ManualClock())
        assert server._pool is pipeline.pool
        assert len(pipeline.pool.replicas) == 2
        response = server.serve_one(np.zeros(16))  # tiny dataset: 16-d
        assert response.ok
        server.close()
        pipeline.close()

    def test_replica_spec_round_trips(self):
        from repro.spec import PipelineSpec, ReplicaSection

        spec = PipelineSpec(
            replica=ReplicaSection(
                enabled=True, n_replicas=3, hedge_delay_ms=25.0,
                tier_stall_budget_ms={"gold": 50.0},
            )
        )
        again = PipelineSpec.from_json(spec.to_json())
        assert again.replica == spec.replica

    def test_sharded_plus_replicas_rejected(self):
        from repro.serve import server_from_spec
        from repro.spec import PipelineSpec, ReplicaSection, ShardSection

        spec = PipelineSpec(
            shard=ShardSection(n_shards=2),
            replica=ReplicaSection(enabled=True, n_replicas=2),
        )
        with pytest.raises(ValueError, match="replica pools over sharded"):
            server_from_spec(spec)


# ----------------------------------------------------------------------
# Parallel (threaded) mode — real clock, real threads
# ----------------------------------------------------------------------
class TestParallelPool:
    def test_threaded_parallel_pool_survives_crash(self, data, baseline):
        pool = ReplicaPool(
            [
                FaultyReplica(make_engine(data), crash_batches=(2,)),
                make_engine(data),
            ],
            config=ReplicaPoolConfig(
                stall_budget_s=5.0, restart_base_s=0.01
            ),
            parallel=True,
        )
        metrics = MetricsRegistry()
        server = Server(
            pool,
            config=ServeConfig(
                max_queue_depth=256, max_batch=8, max_wait_us=500.0
            ),
            default_k=K,
            clock=RealClock(),
            metrics=metrics,
            executor=ThreadedExecutor(),
        )
        tickets = [server.submit(q) for q in data["queries"]]
        responses = [t.wait(timeout=30.0) for t in tickets]
        server.close()
        assert metrics.value(
            "serve_requests_total", tier="default"
        ) == len(tickets)
        for i, (response, base) in enumerate(zip(responses, baseline)):
            assert response.result.outcome.complete, i
            assert_same_result(response, base, where=f"query {i}")
