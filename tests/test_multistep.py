"""Multi-step refinement: exactness and fetch-optimality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.multistep import multistep_knn
from repro.storage.pointfile import PointFile
from tests.conftest import assert_valid_knn


def _fetcher(points):
    calls = []

    def fetch(ids, tracker=None):
        calls.extend(np.atleast_1d(ids).tolist())
        return points[np.atleast_1d(ids)]

    return fetch, calls


class TestCorrectness:
    def test_no_bounds_fetches_everything(self):
        rng = np.random.default_rng(0)
        pts = rng.normal(size=(30, 4))
        fetch, calls = _fetcher(pts)
        res = multistep_knn(pts[0], np.arange(30), np.zeros(30), 5, fetch)
        assert len(calls) == 30
        assert_valid_knn(pts, pts[0], 5, res.ids)

    def test_tight_bounds_fetch_less(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(50, 4))
        q = pts[0]
        dist = np.linalg.norm(pts - q, axis=1)
        fetch, calls = _fetcher(pts)
        res = multistep_knn(q, np.arange(50), dist, 5, fetch)
        # Exact lower bounds: the optimal algorithm fetches exactly k... or
        # slightly more on ties.
        assert len(calls) <= 7
        assert_valid_knn(pts, q, 5, res.ids)

    def test_confirmed_count_toward_k(self):
        rng = np.random.default_rng(2)
        pts = rng.normal(size=(20, 3)) + 10
        q = np.zeros(3)
        dist = np.linalg.norm(pts - q, axis=1)
        order = np.argsort(dist)
        confirmed = order[:2]
        rest = order[2:]
        fetch, calls = _fetcher(pts)
        res = multistep_knn(
            q,
            rest,
            dist[rest],
            4,
            fetch,
            confirmed_ids=confirmed,
            confirmed_ubs=dist[confirmed] + 0.01,
        )
        assert set(confirmed.tolist()) <= set(res.ids.tolist())
        assert_valid_knn(pts, q, 4, res.ids)

    def test_confirmed_never_displaced(self):
        pts = np.array([[0.0], [1.0], [2.0], [3.0]])
        q = np.array([0.0])
        res = multistep_knn(
            q,
            np.array([1, 2, 3]),
            np.array([1.0, 2.0, 3.0]),
            2,
            _fetcher(pts)[0],
            confirmed_ids=np.array([0]),
            confirmed_ubs=np.array([0.5]),
        )
        assert 0 in res.ids

    def test_fewer_candidates_than_k(self):
        pts = np.array([[0.0], [5.0]])
        fetch, _ = _fetcher(pts)
        res = multistep_knn(np.array([1.0]), np.array([0, 1]), np.zeros(2), 9, fetch)
        assert len(res.ids) == 2

    def test_empty_candidates(self):
        pts = np.zeros((1, 2))
        fetch, calls = _fetcher(pts)
        res = multistep_knn(np.zeros(2), np.empty(0, dtype=int), np.empty(0), 3, fetch)
        assert res.ids.size == 0
        assert not calls

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            multistep_knn(np.zeros(2), np.array([0]), np.array([0.0]), 0, lambda i, t: None)

    def test_misaligned_inputs(self):
        with pytest.raises(ValueError):
            multistep_knn(
                np.zeros(2), np.array([0, 1]), np.array([0.0]), 1, lambda i, t: None
            )

    def test_exact_mask_distinguishes_confirmed(self):
        pts = np.array([[0.0], [1.0], [9.0]])
        fetch, _ = _fetcher(pts)
        res = multistep_knn(
            np.array([0.0]),
            np.array([1, 2]),
            np.array([1.0, 9.0]),
            2,
            fetch,
            confirmed_ids=np.array([0]),
            confirmed_ubs=np.array([0.2]),
        )
        by_id = dict(zip(res.ids.tolist(), res.exact_mask.tolist()))
        assert by_id[0] is False  # confirmed: upper bound, not exact
        assert by_id[1] is True

    def test_pointfile_integration_counts_io(self):
        rng = np.random.default_rng(3)
        pts = np.rint(rng.uniform(0, 255, size=(100, 8)))
        pf = PointFile(pts)
        from repro.storage.iostats import QueryIOTracker

        tracker = QueryIOTracker()
        res = multistep_knn(
            pts[0], np.arange(100), np.zeros(100), 3, pf.fetch, tracker=tracker
        )
        assert tracker.page_reads > 0
        assert res.num_fetched == 100


class TestOptimality:
    def test_never_fetches_beyond_threshold(self):
        """Seidl-Kriegel optimality: with exact lower bounds, no candidate
        whose bound exceeds the k-th result distance is fetched."""
        rng = np.random.default_rng(4)
        pts = rng.normal(size=(200, 6))
        q = rng.normal(size=6)
        dist = np.linalg.norm(pts - q, axis=1)
        fetch, calls = _fetcher(pts)
        k = 7
        multistep_knn(q, np.arange(200), dist, k, fetch)
        kth = np.sort(dist)[k - 1]
        assert all(dist[c] <= kth + 1e-12 for c in calls)

    @given(seed=st.integers(0, 2**16), k=st.integers(1, 10))
    @settings(max_examples=40, deadline=None)
    def test_property_exact_with_valid_bounds(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(k, 60))
        pts = rng.normal(size=(n, 3)) * 10
        q = rng.normal(size=3) * 10
        dist = np.linalg.norm(pts - q, axis=1)
        lb = np.maximum(dist - rng.uniform(0, 5, size=n), 0.0)
        fetch, _ = _fetcher(pts)
        res = multistep_knn(q, np.arange(n), lb, k, fetch)
        assert_valid_knn(pts, q, k, res.ids)
