"""Distance bounds: the sandwich property and Lemma 1."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import (
    error_vector_norms,
    exact_distances,
    kth_smallest,
    rectangle_bounds,
)


class TestRectangleBounds:
    def test_point_rectangle_gives_exact_distance(self):
        q = np.array([0.0, 0.0])
        p = np.array([[3.0, 4.0]])
        lb, ub = rectangle_bounds(q, p, p)
        assert lb[0] == pytest.approx(5.0)
        assert ub[0] == pytest.approx(5.0)

    def test_query_inside_rectangle(self):
        q = np.array([1.0, 1.0])
        lb, ub = rectangle_bounds(q, np.array([[0.0, 0.0]]), np.array([[2.0, 2.0]]))
        assert lb[0] == 0.0
        assert ub[0] == pytest.approx(np.sqrt(2.0))

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            rectangle_bounds(np.zeros(3), np.zeros((1, 2)), np.ones((1, 2)))

    def test_vectorized_shapes(self):
        q = np.zeros(4)
        lo = np.zeros((7, 4))
        hi = np.ones((7, 4))
        lb, ub = rectangle_bounds(q, lo, hi)
        assert lb.shape == ub.shape == (7,)

    @given(seed=st.integers(0, 2**16), dim=st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_property_sandwich(self, seed, dim):
        """lb <= dist(q, p) <= ub for any p inside the rectangle."""
        rng = np.random.default_rng(seed)
        q = rng.normal(size=dim) * 10
        lo = rng.normal(size=(5, dim)) * 10
        hi = lo + rng.uniform(0, 5, size=(5, dim))
        # p uniformly inside each rectangle.
        p = lo + rng.uniform(size=(5, dim)) * (hi - lo)
        lb, ub = rectangle_bounds(q, lo, hi)
        dist = exact_distances(q, p)
        assert np.all(lb <= dist + 1e-9)
        assert np.all(dist <= ub + 1e-9)

    @given(seed=st.integers(0, 2**16), dim=st.integers(1, 12))
    @settings(max_examples=80, deadline=None)
    def test_property_lemma1(self, seed, dim):
        """Lemma 1: dist+ - dist <= ||error vector||."""
        rng = np.random.default_rng(seed)
        q = rng.normal(size=dim) * 10
        lo = rng.normal(size=(5, dim)) * 10
        hi = lo + rng.uniform(0, 5, size=(5, dim))
        p = lo + rng.uniform(size=(5, dim)) * (hi - lo)
        _, ub = rectangle_bounds(q, lo, hi)
        dist = exact_distances(q, p)
        eps = error_vector_norms(lo, hi)
        assert np.all(ub - dist <= eps + 1e-9)


class TestExactDistances:
    def test_known_values(self):
        d = exact_distances(np.zeros(2), np.array([[3.0, 4.0], [0.0, 0.0]]))
        assert d.tolist() == [5.0, 0.0]


class TestErrorVectorNorms:
    def test_zero_width(self):
        r = np.array([[1.0, 2.0]])
        assert error_vector_norms(r, r)[0] == 0.0

    def test_matches_manual(self):
        lo = np.array([[0.0, 0.0]])
        hi = np.array([[3.0, 4.0]])
        assert error_vector_norms(lo, hi)[0] == pytest.approx(5.0)


class TestKthSmallest:
    def test_basic(self):
        assert kth_smallest(np.array([5.0, 1.0, 3.0]), 2) == 3.0

    def test_k_beyond_size_is_inf(self):
        assert kth_smallest(np.array([1.0]), 2) == float("inf")

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            kth_smallest(np.array([1.0]), 0)

    def test_with_infinities(self):
        vals = np.array([np.inf, 2.0, np.inf])
        assert kth_smallest(vals, 1) == 2.0
        assert kth_smallest(vals, 2) == np.inf
