"""Multi-dimensional histograms (mHC-R) and the Appendix-B analysis."""

import numpy as np
import pytest

from repro.core.multidim import (
    RTreeBucketEncoder,
    global_width_bound,
    multidim_width_bound,
)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(11)
    return np.rint(rng.uniform(0, 255, size=(512, 12)))


class TestRTreeBucketEncoder:
    def test_geometry(self, points):
        enc = RTreeBucketEncoder(points, tau=5)
        assert enc.n_fields == 1
        assert enc.bits == 5
        assert enc.tree.num_leaves == 32
        # A multi-dimensional code costs tau bits total, not per dimension.
        assert enc.bits_per_point == 5

    def test_rectangles_contain_points(self, points):
        enc = RTreeBucketEncoder(points, tau=4)
        codes = enc.encode(points)
        lo, hi = enc.rectangles(codes)
        assert np.all(lo <= points + 1e-9)
        assert np.all(points <= hi + 1e-9)

    def test_dataset_points_land_in_containing_buckets(self, points):
        """MBRs overlap, so the assigned leaf may differ from the build
        partition — but it must always contain the point (bound validity)."""
        enc = RTreeBucketEncoder(points, tau=4)
        codes = enc.encode(points)[:, 0]
        lo = enc.tree.leaf_lo[codes]
        hi = enc.tree.leaf_hi[codes]
        assert np.all((lo <= points) & (points <= hi))

    def test_bucket_count_capped_by_points(self):
        pts = np.arange(8, dtype=float).reshape(4, 2)
        enc = RTreeBucketEncoder(pts, tau=6)
        assert enc.tree.num_leaves <= 4

    def test_rejects_bad_codes(self, points):
        enc = RTreeBucketEncoder(points, tau=3)
        with pytest.raises(IndexError):
            enc.rectangles(np.array([[99]]))


class TestAppendixB:
    def test_paper_worked_example(self):
        """Appendix B: n=1e6, d=100, tau=8 => w_global = 0.0039,
        w_multidim >= 0.877."""
        assert global_width_bound(8) == pytest.approx(1 / 256)
        assert multidim_width_bound(1_000_000, 100) == pytest.approx(
            0.8771, abs=1e-3
        )

    def test_curse_of_dimensionality(self):
        """The multi-dimensional width explodes with d; global width doesn't."""
        widths = [multidim_width_bound(10_000, d) for d in (2, 10, 50, 200)]
        assert widths == sorted(widths)
        assert widths[-1] > 0.9
        assert global_width_bound(8) < 0.01

    def test_measured_width_respects_bound(self, points):
        """The measured R-tree bucket width is in the same regime as the
        analytic lower bound (buckets hold >= 2 points)."""
        enc = RTreeBucketEncoder(points, tau=6)
        span = float(points.max() - points.min())
        measured = enc.average_bucket_width() / span
        analytic = multidim_width_bound(len(points), points.shape[1])
        # Measured width is at the analytic scale (within a factor of ~3
        # because real buckets hold ~8 points, not 2).
        assert measured > analytic / 3

    def test_validation(self):
        with pytest.raises(ValueError):
            global_width_bound(0)
        with pytest.raises(ValueError):
            multidim_width_bound(1, 10)
