"""Caches: capacity accounting, HFF/LRU policies, bound correctness."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import (
    ApproximateCache,
    CachePolicy,
    ExactCache,
    LeafNodeCache,
    NoCache,
)
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder


@pytest.fixture(scope="module")
def setup():
    rng = np.random.default_rng(4)
    points = np.rint(rng.uniform(0, 255, size=(200, 8)))
    dom = ValueDomain.from_points(points)
    encoder = GlobalHistogramEncoder(build_equidepth(dom, 16), 8)
    return points, encoder


class TestApproximateCache:
    def test_capacity_word_rounded(self, setup):
        points, encoder = setup
        # 8 fields x 4 bits = 32 bits -> 1 word -> 8 bytes per item.
        cache = ApproximateCache(encoder, 80, 200)
        assert cache.max_items == 10

    def test_populate_respects_capacity(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 80, 200)
        added = cache.populate(np.arange(50), points[:50])
        assert added == 10
        assert cache.num_items == 10
        assert cache.used_bytes <= 80

    def test_hff_prefers_frequent(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 80, 200)
        freqs = np.zeros(200)
        freqs[100:105] = 9
        freqs[10] = 100
        cache.populate_hff(freqs, points)
        assert cache.contains(np.array([10]))[0]
        assert cache.contains(np.array([100]))[0]

    def test_lookup_bounds_contain_distance(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 1 << 14, 200)
        cache.populate(np.arange(200), points)
        q = points[0] + 3.0
        ids = np.arange(50)
        hits, lb, ub = cache.lookup(q, ids)
        assert hits.all()
        dist = np.linalg.norm(points[:50] - q, axis=1)
        assert np.all(lb <= dist + 1e-9)
        assert np.all(dist <= ub + 1e-9)

    def test_misses_get_trivial_bounds(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 80, 200)
        cache.populate(np.arange(10), points[:10])
        hits, lb, ub = cache.lookup(points[0], np.array([150]))
        assert not hits[0]
        assert lb[0] == 0.0
        assert ub[0] == np.inf

    def test_lru_eviction_order(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 24, 200, policy=CachePolicy.LRU)
        assert cache.max_items == 3
        cache.admit(np.array([0, 1, 2]), points[:3])
        # Touch 0 so 1 becomes the LRU victim.
        cache.lookup(points[0], np.array([0]))
        cache.admit(np.array([3]), points[3:4])
        assert cache.contains(np.array([0]))[0]
        assert not cache.contains(np.array([1]))[0]
        assert cache.contains(np.array([3]))[0]

    def test_static_cache_ignores_admissions_when_full(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 24, 200, policy=CachePolicy.HFF)
        cache.populate(np.array([0, 1, 2]), points[:3])
        cache.admit(np.array([9]), points[9:10])
        assert not cache.contains(np.array([9]))[0]

    def test_zero_capacity(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 0, 200)
        assert cache.max_items == 0
        hits, _, _ = cache.lookup(points[0], np.arange(5))
        assert not hits.any()

    def test_full_cache_accepts_pure_updates(self, setup):
        """Regression: populate charged updates of already-cached ids
        against the free slots, so a full static cache dropped them."""
        points, encoder = setup
        cache = ApproximateCache(encoder, 80, 200)  # 10 slots
        assert cache.populate(np.arange(10), points[:10]) == 10
        taken = cache.populate(np.arange(10), points[100:110])
        assert taken == 10
        assert cache.num_items == 10
        assert cache.telemetry.updates == 10
        # The stored codes really were re-encoded: the new point now
        # falls inside its own rectangle (lb = 0 at distance 0).
        _, lb, _ = cache.lookup(points[100], np.array([0]))
        assert lb[0] == pytest.approx(0.0)

    def test_populate_mixes_updates_and_new_ids(self, setup):
        points, encoder = setup
        cache = ApproximateCache(encoder, 80, 200)
        cache.populate(np.arange(9), points[:9])  # one slot left
        # One update + one new id: only the new id consumes the slot.
        assert cache.populate(np.array([0, 50]), points[[0, 50]]) == 2
        assert cache.contains(np.array([50]))[0]
        # Full now: an update still lands, the trailing new id is cut.
        assert cache.populate(np.array([3, 60]), points[[3, 60]]) == 1
        assert not cache.contains(np.array([60]))[0]


class TestExactCache:
    def test_exact_distances(self, setup):
        points, _ = setup
        cache = ExactCache(8, 1 << 14, 200)
        cache.populate(np.arange(200), points)
        q = points[3] + 1.0
        hits, lb, ub = cache.lookup(q, np.arange(20))
        dist = np.linalg.norm(points[:20] - q, axis=1)
        assert hits.all()
        assert np.allclose(lb, dist)
        assert np.allclose(ub, dist)

    def test_item_accounting_uses_value_bytes(self):
        cache = ExactCache(8, 320, 100, value_bytes=4)
        assert cache.max_items == 10  # 32 bytes per point

    def test_fewer_items_than_approximate(self, setup):
        points, encoder = setup
        budget = 640
        exact = ExactCache(8, budget, 200)
        approx = ApproximateCache(encoder, budget, 200)
        assert approx.max_items > exact.max_items

    def test_lru_policy(self, setup):
        points, _ = setup
        cache = ExactCache(8, 64, 200, policy=CachePolicy.LRU)
        assert cache.max_items == 2
        cache.admit(np.array([0, 1]), points[:2])
        cache.lookup(points[0], np.array([0]))
        cache.admit(np.array([2]), points[2:3])
        assert not cache.contains(np.array([1]))[0]
        assert cache.contains(np.array([0]))[0]

    def test_hff_population(self, setup):
        points, _ = setup
        cache = ExactCache(8, 96, 200)
        freqs = np.zeros(200)
        freqs[[7, 8, 9]] = [5, 4, 3]
        cache.populate_hff(freqs, points)
        assert cache.contains(np.array([7, 8, 9])).all()

    def test_full_cache_accepts_pure_updates(self, setup):
        """Regression: same free-slot accounting bug as ApproximateCache —
        updates of cached ids must not be charged against capacity."""
        points, _ = setup
        cache = ExactCache(8, 320, 200, value_bytes=4)  # 10 slots
        assert cache.populate(np.arange(10), points[:10]) == 10
        assert cache.populate(np.arange(10), points[100:110]) == 10
        assert cache.num_items == 10
        # The cached vector was really replaced: exact distance to the
        # *new* point is now 0.
        _, lb, ub = cache.lookup(points[100], np.array([0]))
        assert lb[0] == pytest.approx(0.0)
        assert ub[0] == pytest.approx(0.0)


class TestNoCache:
    def test_everything_misses(self):
        cache = NoCache()
        hits, lb, ub = cache.lookup(np.zeros(3), np.arange(4))
        assert not hits.any()
        assert np.all(lb == 0)
        assert np.all(np.isinf(ub))
        assert cache.max_items == 0


class TestLeafNodeCache:
    def test_capacity_limit(self, setup):
        points, encoder = setup
        cache = LeafNodeCache(encoder, 100)
        ids = np.arange(10)
        added = cache.try_add(0, ids, points[:10])
        # 10 points x 8 bytes/row = 80 bytes -> fits.
        assert added
        assert not cache.try_add(1, ids, points[:10])  # would exceed 100

    def test_exact_leaf_lookup(self, setup):
        points, _ = setup
        cache = LeafNodeCache(None, 1 << 12, exact=True)
        cache.try_add(0, np.arange(5), points[:5])
        ids, lb, ub = cache.lookup(points[0], 0)
        dist = np.linalg.norm(points[:5] - points[0], axis=1)
        assert np.allclose(lb, dist)
        assert np.allclose(ub, dist)

    def test_approximate_leaf_bounds(self, setup):
        points, encoder = setup
        cache = LeafNodeCache(encoder, 1 << 12)
        cache.try_add(3, np.arange(20), points[:20])
        q = points[1] + 2.0
        ids, lb, ub = cache.lookup(q, 3)
        dist = np.linalg.norm(points[:20] - q, axis=1)
        assert np.all(lb <= dist + 1e-9)
        assert np.all(dist <= ub + 1e-9)

    def test_miss_returns_none(self, setup):
        _, encoder = setup
        cache = LeafNodeCache(encoder, 1 << 12)
        assert cache.lookup(np.zeros(8), 42) is None

    def test_populate_by_frequency(self, setup):
        points, encoder = setup
        cache = LeafNodeCache(encoder, 180)

        def contents(leaf_id):
            sl = slice(leaf_id * 10, leaf_id * 10 + 10)
            return np.arange(sl.start, sl.stop), points[sl]

        added = cache.populate_by_frequency({0: 5, 1: 9, 2: 1}, contents)
        assert added == 2
        assert 1 in cache and 0 in cache and 2 not in cache

    def test_requires_encoder_unless_exact(self):
        with pytest.raises(ValueError):
            LeafNodeCache(None, 100, exact=False)

    def test_readd_releases_old_cost(self, setup):
        """Regression: re-adding a cached leaf charged its cost twice —
        ``used_bytes`` kept the old entry's bytes, so replacements were
        spuriously rejected and the budget leaked."""
        points, encoder = setup
        cache = LeafNodeCache(encoder, 100)
        assert cache.try_add(0, np.arange(10), points[:10])  # 80 bytes
        assert cache.used_bytes == 80
        # Same-size replacement must fit (the old 80 bytes are released).
        assert cache.try_add(0, np.arange(10), points[10:20])
        assert cache.used_bytes == 80
        assert cache.num_leaves == 1
        assert cache.telemetry.admissions == 1
        assert cache.telemetry.updates == 1
        # Shrinking the leaf returns budget usable by other leaves.
        assert cache.try_add(0, np.arange(5), points[:5])
        assert cache.used_bytes == 40
        assert cache.try_add(1, np.arange(5), points[5:10])
        assert cache.used_bytes == 80

    def test_readd_rejected_only_when_growth_exceeds_budget(self, setup):
        points, encoder = setup
        cache = LeafNodeCache(encoder, 100)
        assert cache.try_add(0, np.arange(10), points[:10])  # 80 bytes
        # Growing the entry past the budget is refused, entry unchanged.
        assert not cache.try_add(0, np.arange(15), points[:15])  # 120 bytes
        assert cache.used_bytes == 80
        ids, _, _ = cache.lookup(points[0], 0)
        assert len(ids) == 10


class TestVectorizedLRUEquivalence:
    """The vectorized stamp-clock ``_touch`` must reproduce, element for
    element, the eviction order a per-hit ``OrderedDict.move_to_end``
    loop would produce — including duplicate ids within one batch."""

    def _fresh(self, setup, capacity_items=6):
        points, encoder = setup
        # 8 bytes/item (8 fields x 4 bits, word-rounded).
        cache = ApproximateCache(
            encoder, capacity_items * 8, 200, policy=CachePolicy.LRU
        )
        assert cache.max_items == capacity_items
        return points, cache

    def test_batch_touch_equals_scalar_touches(self, setup):
        points, cache_a = self._fresh(setup)
        _, cache_b = self._fresh(setup)
        ids = np.array([0, 1, 2, 3, 4, 5])
        cache_a.admit(ids, points[ids])
        cache_b.admit(ids, points[ids])
        batch = np.array([3, 1, 3, 5, 1])  # duplicates: later touch wins
        cache_a._touch(batch)
        for pid in batch:
            cache_b._touch(np.asarray([pid]))
        assert np.array_equal(cache_a._stamp, cache_b._stamp)
        assert cache_a._clock == cache_b._clock

    def test_eviction_order_matches_ordereddict_reference(self, setup):
        from collections import OrderedDict

        points, cache = self._fresh(setup)
        capacity = cache.max_items
        reference: OrderedDict[int, bool] = OrderedDict()

        def ref_touch(ids):
            for pid in ids:
                if pid in reference:
                    reference.move_to_end(pid)

        def ref_admit(ids):
            for pid in ids:
                if pid in reference:
                    reference.move_to_end(pid)
                else:
                    if len(reference) >= capacity:
                        reference.popitem(last=False)
                    reference[pid] = True

        rng = np.random.default_rng(99)
        for _ in range(300):
            ids = rng.integers(0, 40, size=rng.integers(1, 8))
            if rng.random() < 0.5:
                cache.admit(ids, points[ids])
                ref_admit(ids.tolist())
            else:
                # lookup touches only the hits, in array order
                hits, _, _ = cache.lookup(points[0], ids)
                ref_touch(ids[hits].tolist())
            cached = set(np.flatnonzero(cache._slot_of >= 0).tolist())
            assert cached == set(reference)
        # Drain both: the full eviction sequence must agree.
        while cache.num_items:
            cached = cache._id_of_slot[cache._id_of_slot >= 0]
            victim = int(cached[np.argmin(cache._stamp[cached])])
            cache._free.append(cache._evict_lru())
            expected, _ = reference.popitem(last=False)
            assert victim == expected
