"""Extra coverage: orderings, disk model edges, dataset registry sweeps."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import REGISTRY, load_dataset
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.ordering import make_order, sorted_key_order
from repro.storage.pointfile import PointFile


class TestOrderingProperties:
    @given(
        n=st.integers(2, 120),
        d=st.integers(1, 8),
        seed=st.integers(0, 2**10),
        name=st.sampled_from(["raw", "clustered", "sortedkey"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_always_a_permutation(self, n, d, seed, name):
        rng = np.random.default_rng(seed)
        pts = rng.normal(size=(n, d))
        order = make_order(name, pts, seed=seed)
        assert sorted(order.tolist()) == list(range(n))

    def test_sorted_key_deterministic(self):
        pts = np.random.default_rng(0).normal(size=(50, 4))
        a = sorted_key_order(pts, seed=3)
        b = sorted_key_order(pts, seed=3)
        assert np.array_equal(a, b)

    def test_sorted_key_custom_width(self):
        pts = np.random.default_rng(0).normal(size=(50, 4))
        order = sorted_key_order(pts, bucket_width=0.5, seed=0)
        assert sorted(order.tolist()) == list(range(50))

    def test_sorted_key_rejects_bad_projections(self):
        with pytest.raises(ValueError):
            sorted_key_order(np.zeros((3, 2)), n_projections=0)


class TestDiskModelEdges:
    def test_constant_points_pointfile(self):
        pf = PointFile(np.zeros((16, 4)))
        out = pf.fetch(np.arange(16))
        assert out.shape == (16, 4)

    def test_modeled_time_explicit_count(self):
        disk = SimulatedDisk(DiskConfig(read_latency_s=0.01))
        assert disk.modeled_time(7) == pytest.approx(0.07)

    def test_disk_reset(self):
        disk = SimulatedDisk()
        disk.read_page(0)
        disk.reset()
        assert disk.stats.page_reads == 0

    def test_pointfile_value_bytes_affects_layout(self):
        pts = np.zeros((100, 64))
        slim = PointFile(pts, value_bytes=1)   # 64 B/point
        wide = PointFile(pts, value_bytes=8)   # 512 B/point
        assert slim.points_per_page > wide.points_per_page

    def test_pointfile_rejects_bad_value_bytes(self):
        with pytest.raises(ValueError):
            PointFile(np.zeros((2, 2)), value_bytes=0)


class TestRegistrySweeps:
    @pytest.mark.parametrize("name", sorted(REGISTRY))
    def test_every_registry_entry_loads_at_small_scale(self, name):
        ds = load_dataset(name, seed=0, scale=0.02)
        assert ds.num_points >= 200
        assert ds.dim == REGISTRY[name].dim
        assert ds.query_log.test.shape[1] == ds.dim

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            load_dataset("tiny", scale=0.0)
