"""The programmatic sweep API."""

import pytest

from repro.eval.sweeps import (
    best_point,
    cache_sweep,
    k_sweep,
    method_sweep,
    tau_sweep,
)


class TestSweeps:
    def test_tau_sweep(self, tiny_dataset, tiny_context):
        points = tau_sweep(
            tiny_dataset, taus=[4, 6], cache_bytes=30_000, context=tiny_context
        )
        assert [p.value for p in points] == [4, 6]
        assert all(p.parameter == "tau" for p in points)
        assert all(p.result.avg_refine_io >= 0 for p in points)

    def test_cache_sweep_monotone_items(self, tiny_dataset, tiny_context):
        points = cache_sweep(
            tiny_dataset, fractions=[0.05, 0.4], tau=5, context=tiny_context
        )
        # A bigger cache never hurts refinement I/O on this workload.
        assert points[1].result.avg_refine_io <= points[0].result.avg_refine_io * 1.1

    def test_cache_sweep_validation(self, tiny_dataset, tiny_context):
        with pytest.raises(ValueError):
            cache_sweep(tiny_dataset, fractions=[0.0], context=tiny_context)

    def test_method_sweep(self, tiny_dataset, tiny_context):
        points = method_sweep(
            tiny_dataset, methods=["NO-CACHE", "HC-O"], tau=5,
            cache_bytes=30_000, context=tiny_context,
        )
        by = {p.value: p.result for p in points}
        assert by["HC-O"].avg_refine_io <= by["NO-CACHE"].avg_refine_io

    def test_k_sweep_builds_context_per_k(self, tiny_dataset):
        points = k_sweep(tiny_dataset, ks=[1, 5], tau=5, cache_bytes=30_000)
        assert [p.result.k for p in points] == [1, 5]

    def test_best_point(self, tiny_dataset, tiny_context):
        points = tau_sweep(
            tiny_dataset, taus=[2, 6], cache_bytes=30_000, context=tiny_context
        )
        best = best_point(points)
        assert best.result.avg_refine_io == min(
            p.result.avg_refine_io for p in points
        )

    def test_best_point_empty(self):
        with pytest.raises(ValueError):
            best_point([])
