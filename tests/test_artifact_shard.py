"""Shard snapshots: mmap-backed workers vs full pickled specs.

``save_shard_snapshots`` turns per-shard specs into lightweight,
path-bearing ones; every executor hydrating them from the shared object
store must answer bit-identically to the serial engine over the original
full specs — while the pickled payload shrinks by orders of magnitude.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.artifacts.errors import ArtifactError
from repro.artifacts.sharding import (
    load_shard_member_ids,
    load_shard_spec,
    save_shard_snapshots,
)
from repro.shard.engine import ShardedEngine
from repro.shard.factory import specs_from_method


@pytest.fixture(scope="module")
def shard_world(request):
    micro_dataset = request.getfixturevalue("micro_dataset")
    from repro.eval.methods import WorkloadContext

    context = WorkloadContext.prepare(
        micro_dataset, index_name="c2lsh", k=5, seed=0
    )
    specs = specs_from_method(
        micro_dataset, context, method="HC-O", tau=5,
        cache_bytes=1 << 14, n_shards=2, index_name="c2lsh",
        metrics=False,
    )
    return micro_dataset, specs


def reference_answers(dataset, specs, k=5):
    with ShardedEngine(specs, executor="serial") as engine:
        return engine.search_many(dataset.query_log.test, k)


def assert_same_results(expected, actual):
    assert len(expected) == len(actual)
    for ra, rb in zip(expected, actual):
        assert np.array_equal(ra.ids, rb.ids)
        assert np.array_equal(ra.distances, rb.distances)
        assert ra.stats.page_reads == rb.stats.page_reads


class TestShardSnapshots:
    def test_light_specs_pickle_small(self, tmp_path, shard_world):
        _, specs = shard_world
        light = save_shard_snapshots(specs, tmp_path / "shards")
        for full, thin in zip(specs, light):
            full_bytes = len(pickle.dumps(full))
            thin_bytes = len(pickle.dumps(thin))
            assert thin_bytes < 2048
            assert thin_bytes < full_bytes // 10
            assert thin.member_ids is None and thin.points is None
            assert thin.snapshot_path == str(tmp_path / "shards")

    def test_member_ids_loadable_alone(self, tmp_path, shard_world):
        _, specs = shard_world
        save_shard_snapshots(specs, tmp_path / "shards")
        for spec in specs:
            ids = load_shard_member_ids(tmp_path / "shards", spec.shard_id)
            assert np.array_equal(np.sort(ids), np.sort(spec.member_ids))

    def test_hydrated_spec_matches_original(self, tmp_path, shard_world):
        _, specs = shard_world
        light = save_shard_snapshots(specs, tmp_path / "shards")
        for full, thin in zip(specs, light):
            hydrated = load_shard_spec(
                tmp_path / "shards", thin.shard_id, template=thin
            )
            assert np.array_equal(hydrated.member_ids, full.member_ids)
            assert np.array_equal(hydrated.points, full.points)
            assert hydrated.index_name == full.index_name
            assert hydrated.seed == full.seed

    def test_missing_shard_rejected(self, tmp_path, shard_world):
        _, specs = shard_world
        save_shard_snapshots(specs, tmp_path / "shards")
        with pytest.raises(ArtifactError):
            load_shard_spec(tmp_path / "shards", 99)

    def test_double_snapshot_rejected(self, tmp_path, shard_world):
        _, specs = shard_world
        light = save_shard_snapshots(specs, tmp_path / "a")
        with pytest.raises(ArtifactError):
            save_shard_snapshots(light, tmp_path / "b")

    @pytest.mark.parametrize("executor", ["serial", "thread", "process"])
    def test_executors_bit_identical_to_full_serial(
        self, tmp_path, shard_world, executor
    ):
        dataset, specs = shard_world
        expected = reference_answers(dataset, specs)
        light = save_shard_snapshots(specs, tmp_path / "shards")
        with ShardedEngine(light, executor=executor) as engine:
            actual = engine.search_many(dataset.query_log.test, 5)
        assert_same_results(expected, actual)
