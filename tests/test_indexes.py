"""Exact indexes: iDistance, VP-tree, R-tree, VA-file, linear scan.

Every index must return true kNN (tie-tolerant), with and without leaf
caching, and caching must reduce I/O.
"""

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import LeafNodeCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.index.idistance import IDistanceIndex
from repro.index.linear_scan import LinearScanIndex, exact_knn
from repro.index.rtree import RTree, RTreeIndex
from repro.index.vafile import VAFileIndex
from repro.index.vptree import VPTreeIndex
from repro.storage.iostats import QueryIOTracker
from tests.conftest import assert_valid_knn


@pytest.fixture(scope="module")
def encoder(micro_points):
    dom = ValueDomain.from_points(micro_points)
    return GlobalHistogramEncoder(build_equidepth(dom, 16), micro_points.shape[1])


def _leaf_cache(index, encoder, budget, workload, k=5, exact=False):
    cache = LeafNodeCache(None if exact else encoder, budget, exact=exact)
    freqs = index.leaf_access_frequencies(workload, k)
    cache.populate_by_frequency(freqs, index.leaf_contents)
    return cache


class TestExactKNN:
    def test_matches_numpy(self, micro_points):
        q = micro_points[17] + 0.3
        ids, dists = exact_knn(micro_points, q, 5)
        ref = np.sort(np.linalg.norm(micro_points - q, axis=1))[:5]
        assert np.allclose(np.sort(dists), ref)
        assert np.all(np.diff(dists) >= -1e-12)

    def test_k_caps_at_n(self, micro_points):
        ids, _ = exact_knn(micro_points[:3], micro_points[0], 10)
        assert len(ids) == 3

    def test_invalid_k(self, micro_points):
        with pytest.raises(ValueError):
            exact_knn(micro_points, micro_points[0], 0)


class TestLinearScanIndex:
    def test_returns_all_ids(self):
        idx = LinearScanIndex(42)
        assert len(idx.candidates(np.zeros(3), 5)) == 42


@pytest.mark.parametrize("index_cls", [IDistanceIndex, VPTreeIndex, RTreeIndex])
class TestTreeIndexes:
    @pytest.fixture()
    def index(self, index_cls, micro_points):
        if index_cls is RTreeIndex:
            return index_cls(micro_points)
        return index_cls(micro_points, seed=0)

    @pytest.mark.parametrize("k", [1, 4, 11])
    def test_uncached_exactness(self, index, micro_points, k):
        for q in micro_points[::60]:
            res = index.search(q + 0.4, k, tracker=QueryIOTracker())
            assert_valid_knn(micro_points, q + 0.4, k, res.ids)

    def test_leaf_stream_monotone(self, index, micro_points):
        bounds = [b for b, _ in index.leaf_stream(micro_points[0])]
        assert all(a <= b + 1e-12 for a, b in zip(bounds, bounds[1:]))

    def test_cached_exactness_and_io(
        self, index, index_cls, micro_points, micro_dataset, encoder
    ):
        if index_cls is RTreeIndex:
            freqs = {i: 1 for i in range(index.tree.num_leaves)}
            cache = LeafNodeCache(encoder, 1 << 13)
            cache.populate_by_frequency(freqs, index.leaf_contents)
        else:
            cache = _leaf_cache(
                index, encoder, 1 << 13, micro_dataset.query_log.workload
            )
        assert cache.num_leaves > 0
        total_cached, total_plain = 0, 0
        for q in micro_dataset.query_log.test:
            t1, t2 = QueryIOTracker(), QueryIOTracker()
            r_cached = index.search(q, 5, cache=cache, tracker=t1)
            r_plain = index.search(q, 5, cache=None, tracker=t2)
            assert_valid_knn(micro_points, q, 5, r_cached.ids)
            assert set(r_cached.ids.tolist()) <= set(
                np.flatnonzero(
                    np.linalg.norm(micro_points - q, axis=1)
                    <= np.sort(np.linalg.norm(micro_points - q, axis=1))[4] + 1e-9
                ).tolist()
            )
            total_cached += t1.page_reads
            total_plain += t2.page_reads
        assert total_cached <= total_plain


class TestIDistanceSpecifics:
    def test_leaves_partition_points(self, micro_points):
        idx = IDistanceIndex(micro_points, seed=0)
        all_ids = np.concatenate([leaf.point_ids for leaf in idx.leaves])
        assert sorted(all_ids.tolist()) == list(range(len(micro_points)))

    def test_leaves_single_cluster(self, micro_points):
        idx = IDistanceIndex(micro_points, seed=0)
        for leaf in idx.leaves:
            # All points of a leaf share the leaf's cluster.
            d = np.linalg.norm(
                micro_points[leaf.point_ids][:, None, :] - idx.centers[None], axis=2
            )
            assert np.all(np.argmin(d, axis=1) == leaf.cluster)

    def test_key_range_lookup(self, micro_points):
        idx = IDistanceIndex(micro_points, seed=0)
        leaf = idx.leaves[3]
        lo = leaf.cluster * idx.stride + leaf.r_min
        found = idx.leaves_in_key_range(lo, lo)
        assert 3 in found

    def test_leaf_frequencies_nonempty(self, micro_points, micro_dataset):
        idx = IDistanceIndex(micro_points, seed=0)
        freqs = idx.leaf_access_frequencies(micro_dataset.query_log.workload[:20], 5)
        assert freqs and all(v > 0 for v in freqs.values())


class TestVPTreeSpecifics:
    def test_leaf_capacity_respected(self, micro_points):
        idx = VPTreeIndex(micro_points, leaf_capacity=7, seed=1)
        for i in range(idx.num_leaves):
            ids, _ = idx.leaf_contents(i)
            assert 1 <= len(ids) <= 7

    def test_leaves_partition_points(self, micro_points):
        idx = VPTreeIndex(micro_points, seed=1)
        all_ids = np.concatenate(
            [idx.leaf_contents(i)[0] for i in range(idx.num_leaves)]
        )
        assert sorted(all_ids.tolist()) == list(range(len(micro_points)))


class TestRTreeSpecifics:
    def test_power_of_two_leaves(self, micro_points):
        tree = RTree(micro_points, n_leaves=16)
        assert tree.num_leaves == 16

    def test_mbrs_contain_members(self, micro_points):
        tree = RTree(micro_points, n_leaves=8)
        for i, ids in enumerate(tree.leaf_ids):
            pts = micro_points[ids]
            assert np.all(tree.leaf_lo[i] <= pts)
            assert np.all(pts <= tree.leaf_hi[i])

    def test_argument_validation(self, micro_points):
        with pytest.raises(ValueError):
            RTree(micro_points, n_leaves=12)  # not a power of two
        with pytest.raises(ValueError):
            RTree(micro_points)
        with pytest.raises(ValueError):
            RTree(micro_points, n_leaves=8, leaf_capacity=4)


class TestVAFile:
    def test_candidates_contain_true_knn(self, micro_points):
        idx = VAFileIndex(micro_points, bits=5)
        for q in micro_points[::50]:
            cands = set(idx.candidates(q + 0.2, 5).tolist())
            truth, _ = exact_knn(micro_points, q + 0.2, 5)
            assert set(truth.tolist()) <= cands

    def test_bounds_sandwich(self, micro_points):
        idx = VAFileIndex(micro_points, bits=4)
        q = micro_points[0] + 1.0
        lb, ub = idx.bounds(q)
        d = np.linalg.norm(micro_points - q, axis=1)
        assert np.all(lb <= d + 1e-9)
        assert np.all(d <= ub + 1e-9)

    def test_more_bits_fewer_candidates(self, micro_points):
        coarse = VAFileIndex(micro_points, bits=2)
        fine = VAFileIndex(micro_points, bits=7)
        q = micro_points[9] + 0.5
        assert len(fine.candidates(q, 5)) <= len(coarse.candidates(q, 5))

    def test_disk_scan_charges_pages(self, micro_points):
        idx = VAFileIndex(micro_points, bits=6, approximations_on_disk=True)
        t = QueryIOTracker()
        idx.candidates(micro_points[0], 5, t)
        assert t.page_reads == idx.scan_pages > 0

    def test_validation(self, micro_points):
        with pytest.raises(ValueError):
            VAFileIndex(micro_points, bits=0)
        idx = VAFileIndex(micro_points, bits=4)
        with pytest.raises(ValueError):
            idx.candidates(micro_points[0], 0)
