"""Deliverable guards: examples run, docs reference real artifacts."""

import re
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).parent.parent


class TestExamples:
    """The fast examples must run end-to-end (slow ones are smoke-checked
    by compilation only)."""

    @pytest.mark.parametrize(
        "script", ["paper_walkthrough.py"]
    )
    def test_fast_example_runs(self, script):
        result = subprocess.run(
            [sys.executable, str(REPO / "examples" / script)],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout.strip()

    @pytest.mark.parametrize(
        "script",
        [
            "quickstart.py",
            "image_retrieval.py",
            "exact_index_caching.py",
            "cost_model_tuning.py",
            "similarity_join.py",
            "online_service.py",
        ],
    )
    def test_example_compiles(self, script):
        source = (REPO / "examples" / script).read_text()
        compile(source, script, "exec")


class TestDocsConsistency:
    def test_design_bench_targets_exist(self):
        design = (REPO / "DESIGN.md").read_text()
        for match in re.finditer(r"benchmarks/(test_\w+\.py)", design):
            assert (REPO / "benchmarks" / match.group(1)).exists(), match.group(0)

    def test_experiments_bench_names_exist(self):
        experiments = (REPO / "EXPERIMENTS.md").read_text()
        for match in re.finditer(r"`(test_\w+)`", experiments):
            assert (REPO / "benchmarks" / f"{match.group(1)}.py").exists(), (
                match.group(1)
            )

    def test_readme_examples_exist(self):
        readme = (REPO / "README.md").read_text()
        for match in re.finditer(r"examples/(\w+\.py)", readme):
            assert (REPO / "examples" / match.group(1)).exists(), match.group(0)

    def test_report_sections_have_benchmarks(self):
        from repro.eval.analysis import REPORT_SECTIONS

        for name, _ in REPORT_SECTIONS:
            assert (REPO / "benchmarks" / f"test_{name}.py").exists(), name

    def test_every_benchmark_is_documented(self):
        """Every benchmark file appears in DESIGN.md or EXPERIMENTS.md."""
        docs = (REPO / "DESIGN.md").read_text() + (
            REPO / "EXPERIMENTS.md"
        ).read_text()
        for bench in (REPO / "benchmarks").glob("test_*.py"):
            if bench.stem == "test_throughput":
                continue  # CPU microbenchmarks, not a paper experiment
            assert bench.stem.removeprefix("test_") in docs or bench.stem in docs, (
                bench.name
            )

    def test_architecture_doc_module_pointers(self):
        doc = (REPO / "docs" / "architecture.md").read_text()
        for match in re.finditer(r"`(core|storage|lsh|index|data|eval|extensions)\.(\w+)`", doc):
            module = REPO / "src" / "repro" / match.group(1) / f"{match.group(2)}.py"
            assert module.exists(), match.group(0)
