"""Shared fixtures: small deterministic datasets and prepared contexts.

Expensive artifacts (the tiny dataset, its workload context) are session-
scoped; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import ValueDomain
from repro.data.datasets import Dataset, load_dataset
from repro.data.workload import generate_query_log
from repro.eval.methods import WorkloadContext


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """The registry 'tiny' dataset: 2000 x 16, 8-bit grid, Zipf log."""
    return load_dataset("tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_context(tiny_dataset: Dataset) -> WorkloadContext:
    """Workload context over the tiny dataset with the C2LSH index."""
    return WorkloadContext.prepare(tiny_dataset, index_name="c2lsh", k=10, seed=0)


@pytest.fixture(scope="session")
def micro_points() -> np.ndarray:
    """400 x 6 grid-valued points for fast index tests."""
    rng = np.random.default_rng(7)
    centers = rng.uniform(20, 200, size=(3, 6))
    pts = np.concatenate(
        [c + rng.normal(scale=12, size=(140, 6)) for c in centers]
    )[:400]
    return np.rint(np.clip(pts, 0, 255))


@pytest.fixture(scope="session")
def micro_dataset(micro_points: np.ndarray) -> Dataset:
    log = generate_query_log(
        micro_points, pool_size=40, workload_size=200, test_size=12, seed=3
    )
    return Dataset(
        name="micro", points=micro_points, value_bits=8, query_log=log
    )


@pytest.fixture(scope="session")
def micro_domain(micro_points: np.ndarray) -> ValueDomain:
    return ValueDomain.from_points(micro_points)


def brute_force_knn_set(points: np.ndarray, query: np.ndarray, k: int) -> set[int]:
    """All ids within the k-th smallest distance (tie-tolerant truth)."""
    d = np.linalg.norm(points - query, axis=1)
    kth = np.sort(d)[min(k, len(points)) - 1]
    return set(np.flatnonzero(d <= kth + 1e-9).tolist())


def assert_valid_knn(points: np.ndarray, query: np.ndarray, k: int, ids) -> None:
    """Result must have k ids, all within the true k-th distance."""
    ids = list(ids)
    assert len(ids) == min(k, len(points))
    assert len(set(ids)) == len(ids), "duplicate result ids"
    truth = brute_force_knn_set(points, query, k)
    assert set(ids) <= truth, f"non-kNN ids returned: {set(ids) - truth}"
