"""Shared fixtures: small deterministic datasets and prepared contexts.

Expensive artifacts (the tiny dataset, its workload context) are session-
scoped; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.domain import ValueDomain
from repro.data.datasets import Dataset, load_dataset
from repro.data.workload import generate_query_log
from repro.eval.methods import WorkloadContext


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def tiny_dataset() -> Dataset:
    """The registry 'tiny' dataset: 2000 x 16, 8-bit grid, Zipf log."""
    return load_dataset("tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_context(tiny_dataset: Dataset) -> WorkloadContext:
    """Workload context over the tiny dataset with the C2LSH index."""
    return WorkloadContext.prepare(tiny_dataset, index_name="c2lsh", k=10, seed=0)


@pytest.fixture(scope="session")
def micro_points() -> np.ndarray:
    """400 x 6 grid-valued points for fast index tests."""
    rng = np.random.default_rng(7)
    centers = rng.uniform(20, 200, size=(3, 6))
    pts = np.concatenate(
        [c + rng.normal(scale=12, size=(140, 6)) for c in centers]
    )[:400]
    return np.rint(np.clip(pts, 0, 255))


@pytest.fixture(scope="session")
def micro_dataset(micro_points: np.ndarray) -> Dataset:
    log = generate_query_log(
        micro_points, pool_size=40, workload_size=200, test_size=12, seed=3
    )
    return Dataset(
        name="micro", points=micro_points, value_bits=8, query_log=log
    )


@pytest.fixture(scope="session")
def micro_domain(micro_points: np.ndarray) -> ValueDomain:
    return ValueDomain.from_points(micro_points)


def make_shard_merge_case(
    rng: np.random.Generator,
    n_shards: int | None = None,
    plant_ties: bool = True,
    tiny_shards: bool = False,
) -> tuple[list[np.ndarray], list[np.ndarray], int]:
    """One randomized top-k merge instance: per-shard (ids, dists) plus k.

    Ids are globally disjoint (shards partition an id space).  With
    ``plant_ties`` a shared distance value is planted across shards so a
    merge must exercise its tie-breaking; with ``tiny_shards`` shard
    sizes may be smaller than ``k`` (the merge must not pad or truncate
    wrongly).  Seeded by the caller's generator for reproducibility.
    """
    n_shards = n_shards if n_shards is not None else int(rng.integers(1, 6))
    high = 4 if tiny_shards else 30
    sizes = rng.integers(0 if tiny_shards else 1, high, size=n_shards)
    if sizes.sum() == 0:
        sizes[0] = 1
    total = int(sizes.sum())
    ids = rng.permutation(total * 3)[:total].astype(np.int64)
    dists = np.round(rng.uniform(0, 10, size=total), 2)
    if plant_ties and total >= 2:
        tie_value = float(dists[0])
        tie_count = int(rng.integers(2, min(total, 6) + 1))
        dists[rng.permutation(total)[:tie_count]] = tie_value
    id_arrays, dist_arrays, start = [], [], 0
    for size in sizes:
        stop = start + int(size)
        id_arrays.append(ids[start:stop])
        dist_arrays.append(dists[start:stop])
        start = stop
    k = int(rng.integers(1, total + 3))  # may exceed every shard's size
    return id_arrays, dist_arrays, k


@pytest.fixture()
def shard_merge_cases():
    """Seeded generator of randomized merge instances (satellite tests).

    Returns a callable ``(seed, n_cases, **kwargs) -> iterator`` so each
    property test owns an explicit, reportable seed.
    """

    def generate(seed: int, n_cases: int, **kwargs):
        case_rng = np.random.default_rng(seed)
        for _ in range(n_cases):
            yield make_shard_merge_case(case_rng, **kwargs)

    return generate


def brute_force_knn_set(points: np.ndarray, query: np.ndarray, k: int) -> set[int]:
    """All ids within the k-th smallest distance (tie-tolerant truth)."""
    d = np.linalg.norm(points - query, axis=1)
    kth = np.sort(d)[min(k, len(points)) - 1]
    return set(np.flatnonzero(d <= kth + 1e-9).tolist())


def assert_valid_knn(points: np.ndarray, query: np.ndarray, k: int, ids) -> None:
    """Result must have k ids, all within the true k-th distance."""
    ids = list(ids)
    assert len(ids) == min(k, len(points))
    assert len(set(ids)) == len(ids), "duplicate result ids"
    truth = brute_force_knn_set(points, query, k)
    assert set(ids) <= truth, f"non-kNN ids returned: {set(ids) - truth}"
