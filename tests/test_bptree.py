"""B+-tree: inserts, bulk loading, range scans vs. a sorted-list oracle."""

import bisect

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bptree import BPlusTree


def _oracle_range(items, lo, hi):
    keys = [k for k, _ in items]
    i = bisect.bisect_left(keys, lo)
    j = bisect.bisect_right(keys, hi)
    return items[i:j]


class TestInsertSearch:
    def test_basic(self):
        t = BPlusTree(order=4)
        for k in [5, 1, 9, 3, 7]:
            t.insert(float(k), f"v{k}")
        assert t.search(3.0) == ["v3"]
        assert t.search(8.0) == []
        assert t.size == 5

    def test_duplicates(self):
        t = BPlusTree(order=3)
        for _ in range(5):
            t.insert(2.0, "dup")
        assert t.search(2.0) == ["dup"] * 5

    def test_splits_grow_height(self):
        t = BPlusTree(order=3)
        for k in range(50):
            t.insert(float(k), k)
        assert t.height >= 3
        assert [k for k, _ in t.items()] == sorted(float(k) for k in range(50))

    def test_order_validation(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestBulkLoad:
    def test_roundtrip(self):
        items = [(float(k), k) for k in range(200)]
        t = BPlusTree.bulk_load(items, order=8)
        assert t.size == 200
        assert list(t.items()) == items

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            BPlusTree.bulk_load([(2.0, 1), (1.0, 2)])

    def test_empty(self):
        t = BPlusTree.bulk_load([])
        assert t.size == 0
        assert list(t.items()) == []

    def test_insert_after_bulk_load(self):
        t = BPlusTree.bulk_load([(float(k), k) for k in range(0, 40, 2)], order=4)
        t.insert(5.0, "five")
        assert t.search(5.0) == ["five"]
        keys = [k for k, _ in t.items()]
        assert keys == sorted(keys)


class TestRangeSearch:
    def test_inclusive_bounds(self):
        t = BPlusTree.bulk_load([(float(k), k) for k in range(10)], order=4)
        got = list(t.range_search(3.0, 6.0))
        assert [k for k, _ in got] == [3.0, 4.0, 5.0, 6.0]

    def test_empty_range(self):
        t = BPlusTree.bulk_load([(float(k), k) for k in range(10)], order=4)
        assert list(t.range_search(4.5, 4.6)) == []
        assert list(t.range_search(6.0, 3.0)) == []

    def test_range_spanning_leaves(self):
        t = BPlusTree(order=3)
        for k in range(100):
            t.insert(float(k), k)
        got = [v for _, v in t.range_search(10.0, 90.0)]
        assert got == list(range(10, 91))

    @given(
        keys=st.lists(st.integers(0, 500), min_size=1, max_size=150),
        lo=st.integers(0, 500),
        span=st.integers(0, 200),
        order=st.integers(3, 16),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_matches_oracle(self, keys, lo, span, order):
        t = BPlusTree(order=order)
        items = []
        for i, k in enumerate(keys):
            t.insert(float(k), i)
            items.append((float(k), i))
        items.sort(key=lambda kv: kv[0])
        hi = lo + span
        got = sorted(t.range_search(float(lo), float(hi)))
        expect = sorted(_oracle_range(items, float(lo), float(hi)))
        assert got == expect
