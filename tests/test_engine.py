"""The unified QueryEngine: batched execution, phases, hooks, regressions.

Covers the engine-refactor guarantees:

* batched ``search_many`` is element-wise identical (ids, distances and
  I/O stats) to the per-query loop, for every candidate-set index and
  every tree index;
* eager miss fetching returns the same results as the lazy default, and
  admits the fetched points (the eager-admission fix);
* candidate ids are deduplicated at the reduction boundary;
* empty candidate sets return early with zeroed stats;
* phase hooks observe every phase of every query.
"""

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import (
    ApproximateCache,
    CachePolicy,
    ExactCache,
    LeafNodeCache,
    NoCache,
)
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.engine import (
    ExecutionContext,
    PhaseHook,
    QueryEngine,
    TimingHook,
    dedupe_ids,
)
from repro.index.idistance import IDistanceIndex
from repro.index.linear_scan import LinearScanIndex
from repro.index.mtree import MTreeIndex
from repro.index.rtree import RTreeIndex
from repro.index.vafile import VAFileIndex
from repro.index.vaplus import VAPlusFileIndex
from repro.index.vptree import VPTreeIndex
from repro.lsh.c2lsh import C2LSHIndex
from repro.lsh.e2lsh import E2LSHIndex
from repro.lsh.multiprobe import MultiProbeLSHIndex
from repro.lsh.sklsh import SKLSHIndex
from repro.storage.pointfile import PointFile

CANDIDATE_INDEXES = {
    "linear": lambda pts: LinearScanIndex(len(pts)),
    "vafile": lambda pts: VAFileIndex(pts),
    "vaplus": lambda pts: VAPlusFileIndex(pts),
    "c2lsh": lambda pts: C2LSHIndex(pts, seed=1),
    "e2lsh": lambda pts: E2LSHIndex(pts, seed=1),
    "multiprobe": lambda pts: MultiProbeLSHIndex(pts, seed=1),
    "sklsh": lambda pts: SKLSHIndex(pts, seed=1),
}

TREE_INDEXES = {
    "idistance": lambda pts: IDistanceIndex(pts, seed=1),
    "vptree": lambda pts: VPTreeIndex(pts, seed=1),
    "mtree": lambda pts: MTreeIndex(pts, seed=1),
    "rtree": lambda pts: RTreeIndex(pts),
}


def make_encoder(points, bins=16):
    dom = ValueDomain.from_points(points)
    return GlobalHistogramEncoder(build_equidepth(dom, bins), points.shape[1])


def make_cache(points, capacity_bytes=1 << 12, policy=CachePolicy.HFF):
    """A partially populated approximate cache (some hits, some misses)."""
    cache = ApproximateCache(
        make_encoder(points), capacity_bytes, len(points), policy=policy
    )
    if policy is not CachePolicy.LRU:
        cache.populate(
            np.arange(cache.max_items), points[: cache.max_items]
        )
    return cache


def assert_results_identical(a, b):
    assert np.array_equal(a.ids, b.ids)
    assert np.array_equal(a.distances, b.distances)
    assert np.array_equal(a.exact_mask, b.exact_mask)
    assert a.stats == b.stats


@pytest.fixture(scope="module")
def queries(micro_points):
    return micro_points[::50] + 0.25


class TestBatchedEquivalence:
    @pytest.mark.parametrize("index_name", sorted(CANDIDATE_INDEXES))
    def test_matches_per_query(self, micro_points, queries, index_name):
        pf = PointFile(micro_points)
        index = CANDIDATE_INDEXES[index_name](micro_points)
        engine = QueryEngine.for_index(index, pf, make_cache(micro_points))
        per_query = [engine.search(q, 5) for q in queries]
        batched = engine.search_many(queries, 5)
        assert len(batched) == len(queries)
        for a, b in zip(per_query, batched):
            assert_results_identical(a, b)

    @pytest.mark.parametrize("cache_kind", ["exact", "none"])
    def test_matches_per_query_other_caches(
        self, micro_points, queries, cache_kind
    ):
        pf = PointFile(micro_points)
        index = LinearScanIndex(len(micro_points))
        if cache_kind == "exact":
            cache = ExactCache(micro_points.shape[1], 1 << 12, len(micro_points))
            cache.populate(
                np.arange(cache.max_items), micro_points[: cache.max_items]
            )
        else:
            cache = NoCache()
        engine = QueryEngine.for_index(index, pf, cache)
        for a, b in zip(
            [engine.search(q, 5) for q in queries],
            engine.search_many(queries, 5),
        ):
            assert_results_identical(a, b)

    @pytest.mark.parametrize("index_name", sorted(TREE_INDEXES))
    def test_tree_matches_per_query(self, micro_points, queries, index_name):
        def build_engine():
            index = TREE_INDEXES[index_name](micro_points)
            cache = LeafNodeCache(make_encoder(micro_points), 1 << 12)
            return QueryEngine.for_tree(index, cache)

        # Two independently built engines: the leaf cache is stateful, so
        # each execution order must start from the same (fresh) state.
        per_query = [build_engine().search(q, 5) for q in [*queries]]
        batched = build_engine().search_many(queries, 5)
        for a, b in zip(per_query, batched):
            assert_results_identical(a, b)

    def test_chunked_matches_unchunked(self, micro_points, queries):
        pf = PointFile(micro_points)
        engine = QueryEngine.for_index(
            LinearScanIndex(len(micro_points)), pf, make_cache(micro_points)
        )
        for a, b in zip(
            engine.search_many(queries, 5),
            engine.search_many(queries, 5, chunk_size=3),
        ):
            assert_results_identical(a, b)

    def test_lru_cache_falls_back_to_sequential(self, micro_points, queries):
        pf = PointFile(micro_points)

        def build_engine():
            cache = make_cache(micro_points, policy=CachePolicy.LRU)
            return QueryEngine.for_index(
                LinearScanIndex(len(micro_points)), pf, cache
            )

        engine = build_engine()
        assert not engine._batchable_cache()
        per_query = []
        seq_engine = build_engine()
        for q in queries:
            per_query.append(seq_engine.search(q, 5))
        for a, b in zip(per_query, engine.search_many(queries, 5)):
            assert_results_identical(a, b)

    def test_empty_batch(self, micro_points):
        pf = PointFile(micro_points)
        engine = QueryEngine.for_index(
            LinearScanIndex(len(micro_points)), pf, NoCache()
        )
        assert engine.search_many(
            np.empty((0, micro_points.shape[1])), 5
        ) == []


class TestEagerMissFetch:
    def test_matches_lazy_results(self, micro_points, queries):
        pf = PointFile(micro_points)
        index = LinearScanIndex(len(micro_points))
        lazy = QueryEngine.for_index(index, pf, make_cache(micro_points))
        eager = QueryEngine.for_index(
            index, pf, make_cache(micro_points), eager_miss_fetch=True
        )
        for q in queries:
            a, b = lazy.search(q, 5), eager.search(q, 5)
            assert np.array_equal(a.ids, b.ids)
            assert np.allclose(a.distances, b.distances)

    def test_eager_fetches_are_admitted(self, micro_points):
        """Regression: eager-fetched misses must enter a dynamic cache."""
        pf = PointFile(micro_points)
        cache = make_cache(micro_points, policy=CachePolicy.LRU)
        assert cache.num_items == 0
        engine = QueryEngine.for_index(
            LinearScanIndex(len(micro_points)), pf, cache, eager_miss_fetch=True
        )
        engine.search(micro_points[3] + 0.5, 5)
        assert cache.num_items > 0


class TestDedupAndEmpty:
    def test_dedupe_ids_keeps_first_occurrence_order(self):
        ids = np.array([7, 2, 7, 5, 2, 9], dtype=np.int64)
        assert dedupe_ids(ids).tolist() == [7, 2, 5, 9]

    def test_duplicate_candidates_are_deduped(self, micro_points):
        """Regression: duplicate ids must not reach the reduction phase."""

        class DuplicatingIndex:
            def candidates(self, query, k, tracker=None):
                ids = np.arange(len(micro_points), dtype=np.int64)
                return np.concatenate([ids, ids[:100]])

        pf = PointFile(micro_points)
        cache = make_cache(micro_points)
        dup = QueryEngine.for_index(DuplicatingIndex(), pf, cache)
        ref = QueryEngine.for_index(LinearScanIndex(len(micro_points)), pf, cache)
        query = micro_points[11] + 0.5
        a, b = dup.search(query, 5), ref.search(query, 5)
        assert a.stats.num_candidates == len(micro_points)
        assert_results_identical(a, b)

    def test_empty_candidates_return_early(self, micro_points):
        class EmptyIndex:
            def candidates(self, query, k, tracker=None):
                return np.empty(0, dtype=np.int64)

        pf = PointFile(micro_points)
        engine = QueryEngine.for_index(EmptyIndex(), pf, NoCache())
        result = engine.search(micro_points[0], 5)
        assert len(result.ids) == 0
        assert result.stats.num_candidates == 0
        assert result.stats.page_reads == 0
        # Batched path takes the same early exit.
        batched = engine.search_many(micro_points[:3], 5)
        assert all(len(r.ids) == 0 for r in batched)


class TestHooks:
    def test_phase_hooks_fire_per_query(self, micro_points):
        events = []

        class Recorder(PhaseHook):
            def on_phase_start(self, phase, ctx):
                events.append(("start", phase))

            def on_phase_end(self, phase, ctx, elapsed_s):
                events.append(("end", phase))
                assert elapsed_s >= 0.0

        pf = PointFile(micro_points)
        engine = QueryEngine.for_index(
            LinearScanIndex(len(micro_points)),
            pf,
            make_cache(micro_points),
            hooks=(Recorder(),),
        )
        engine.search(micro_points[0] + 0.5, 5)
        phases = [name for kind, name in events if kind == "start"]
        assert phases == ["generate", "reduce", "refine"]
        assert events[0] == ("start", "generate")
        assert events[-1] == ("end", "refine")

    def test_timing_hook_accumulates(self, micro_points):
        hook = TimingHook()
        pf = PointFile(micro_points)
        engine = QueryEngine.for_index(
            LinearScanIndex(len(micro_points)),
            pf,
            make_cache(micro_points),
            hooks=(hook,),
        )
        for q in micro_points[:4]:
            engine.search(q, 3)
        assert hook.calls["generate"] == 4
        assert hook.calls["reduce"] == 4
        assert hook.calls["refine"] == 4
        assert all(total >= 0.0 for total in hook.totals.values())

    def test_context_timings_recorded(self, micro_points):
        pf = PointFile(micro_points)
        engine = QueryEngine.for_index(
            LinearScanIndex(len(micro_points)), pf, make_cache(micro_points)
        )
        ctx = ExecutionContext()
        engine.search(micro_points[0], 5, ctx=ctx)
        assert set(ctx.timings) == {"generate", "reduce", "refine"}
