"""Differential harness: sharded search is invariant in shard count and executor.

The guarantee matrix, per (index family x cache mode) cell:

* **results** — ids, distances and (except under LRU, see below) the
  ``exact_mask`` are byte-identical to the unsharded ``QueryEngine``
  for every shard count in {1, 2, 3, 7};
* **reduction stats** — ``num_candidates`` / ``cache_hits`` / ``pruned``
  / ``confirmed`` / ``c_refine`` equal the baseline's wherever candidate
  generation is decomposable (all cells except the VA-file, whose
  shard-local filter thresholds produce conservative candidate
  supersets, and the trees, whose traversal counts depend on tree
  shape);
* **I/O totals** — fetch/page-read counts equal the baseline's in the
  NO-CACHE cells (every survivor is fetched, so counts are
  layout-independent once a page holds exactly one point); cached cells
  assert executor-invariance and exact reconciliation instead;
* **executors** — serial, thread and process produce identical results,
  per-query stats and merged metrics at a fixed shard count;
* **metrics** — the merged registry reconciles exactly with the
  per-shard registries (counters add under ``MetricsRegistry.merge``).

Under an LRU cache only ids and distances are asserted against the
baseline: confirmed-vs-refined provenance (the ``exact_mask``) may
legitimately differ because the shards' dynamic caches hold different
residents, but the reported distances are exact either way.

Every randomized input derives from ``SEED`` below; assertion messages
carry the cell name, shard count and executor so failures reproduce
with ``np.random.default_rng(SEED)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import (
    ApproximateCache,
    CachePolicy,
    ExactCache,
    LeafNodeCache,
    NoCache,
)
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.engine.engine import QueryEngine
from repro.index.idistance import IDistanceIndex
from repro.index.linear_scan import LinearScanIndex
from repro.index.vafile import VAFileIndex
from repro.index.vptree import VPTreeIndex
from repro.lsh.c2lsh import C2LSHIndex, C2LSHParams, calibrate_base_radius
from repro.shard import ShardedEngine, build_shard_specs
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

SEED = 20240806
N_POINTS = 260
DIM = 5
K = 5
SHARD_COUNTS = (1, 2, 3, 7)
EXECUTORS = ("serial", "thread", "process")
CACHE_BYTES = 1 << 11
#: C2LSH pinned so every shard's stop rule is "all points passed" — the
#: only configuration whose candidate *set* is decomposable by shard.
C2LSH_PARAMS = {"beta": 1.0, "n_hashes": 16}

REDUCTION_FIELDS = (
    "num_candidates",
    "cache_hits",
    "pruned",
    "confirmed",
    "c_refine",
)
# Refinement I/O only: generation I/O (index-structure page reads) is
# inherently per-shard — every shard scans its *own* hash tables /
# approximation file — so ``gen_page_reads`` grows with the shard count
# for structured generators and is asserted only where generation reads
# nothing (linear scan).
IO_FIELDS = ("refined_fetches", "refine_page_reads")
QUERY_COUNTERS = (
    "engine_queries_total",
    "engine_candidates_total",
    "engine_cache_hits_total",
    "engine_pruned_total",
    "engine_confirmed_total",
    "engine_crefine_total",
    "engine_refined_fetches_total",
    "engine_gen_page_reads_total",
    "engine_refine_page_reads_total",
    "engine_leaves_streamed_total",
    "engine_leaf_fetches_total",
    "engine_cached_leaf_hits_total",
)


@dataclass(frozen=True)
class Cell:
    """One (index family x cache mode) entry of the guarantee matrix."""

    name: str
    index_name: str
    cache: str  # none | hc-hff | exact-hff | exact-lru | leaf
    index_params: dict = field(default_factory=dict)
    compare_mask: bool = True  # exact_mask vs baseline
    compare_values: bool = True  # distances/ordering vs baseline
    stats_invariant: bool = False  # REDUCTION_FIELDS vs baseline
    io_invariant: bool = False  # IO_FIELDS vs baseline (NO-CACHE only)
    gen_io_invariant: bool = False  # gen_page_reads vs baseline
    point_pages: bool = False  # 1 point per page (layout-free I/O counts)


CELLS = (
    Cell(
        "linear~none", "linear", "none",
        stats_invariant=True, io_invariant=True, gen_io_invariant=True,
        point_pages=True,
    ),
    Cell("linear~hc-hff", "linear", "hc-hff", stats_invariant=True),
    Cell("linear~exact-hff", "linear", "exact-hff", stats_invariant=True),
    Cell("linear~exact-lru", "linear", "exact-lru", compare_mask=False),
    Cell(
        "c2lsh~none", "c2lsh", "none",
        index_params={"params": C2LSH_PARAMS},
        stats_invariant=True, io_invariant=True, point_pages=True,
    ),
    Cell(
        "c2lsh~hc-hff", "c2lsh", "hc-hff",
        index_params={"params": C2LSH_PARAMS}, stats_invariant=True,
    ),
    # The VA-file filter is not decomposable: each shard's kth-upper-bound
    # threshold is looser than the global one, so the union of shard
    # candidates is a strict superset and the global ``lb_k`` can shift —
    # a result the baseline *confirms* (reported at its ub) may instead
    # be *refined* (reported exact).  The result id set is still
    # identical; distances/ordering/provenance are not guaranteed.
    Cell(
        "vafile~hc-hff", "vafile", "hc-hff", index_params={"bits": 6},
        compare_mask=False, compare_values=False,
    ),
    Cell(
        "vafile~none", "vafile", "none",
        index_params={"bits": 6}, point_pages=True,
    ),
    Cell("idistance~none", "idistance", "none"),
    Cell("idistance~leaf", "idistance", "leaf"),
    Cell("vptree~none", "vptree", "none"),
)

TREE_CLASSES = {"idistance": IDistanceIndex, "vptree": VPTreeIndex}


# ----------------------------------------------------------------------
# Shared inputs (module-scoped; every test sees identical arrays)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(N_POINTS, DIM))
    queries = rng.normal(size=(6, DIM))
    frequencies = rng.integers(0, 9, size=N_POINTS).astype(np.int64)
    encoder = GlobalHistogramEncoder(
        build_equidepth(ValueDomain.from_points(points), 16), DIM
    )
    return {
        "points": points,
        "queries": queries,
        "frequencies": frequencies,
        "encoder": encoder,
    }


def _disk(cell: Cell) -> DiskConfig:
    if cell.point_pages:
        return DiskConfig(page_size=DIM * 4)
    return DiskConfig()


def _cache_spec(cell: Cell, data) -> dict | None:
    if cell.cache == "none":
        return None
    if cell.cache == "hc-hff":
        return {
            "kind": "approx",
            "encoder": data["encoder"],
            "capacity_bytes": CACHE_BYTES,
            "policy": "hff",
        }
    if cell.cache == "exact-hff":
        return {"kind": "exact", "capacity_bytes": CACHE_BYTES, "policy": "hff"}
    if cell.cache == "exact-lru":
        return {"kind": "exact", "capacity_bytes": CACHE_BYTES, "policy": "lru"}
    if cell.cache == "leaf":
        return {
            "kind": "leaf",
            "capacity_bytes": CACHE_BYTES,
            "encoder": data["encoder"],
            "populate_workload": data["queries"],
            "k": K,
        }
    raise ValueError(cell.cache)


def baseline_results(cell: Cell, data) -> list:
    """The unsharded engine's answers for this cell (fresh state)."""
    points = data["points"]
    if cell.index_name in TREE_CLASSES:
        index = TREE_CLASSES[cell.index_name](points, seed=0, value_bytes=4)
        cache = None
        if cell.cache == "leaf":
            cache = LeafNodeCache(data["encoder"], CACHE_BYTES)
            freqs = index.leaf_access_frequencies(data["queries"], K)
            cache.populate_by_frequency(freqs, index.leaf_contents)
        engine = QueryEngine.for_tree(index, cache)
        return engine.search_many(data["queries"], K)
    if cell.index_name == "linear":
        index = LinearScanIndex(N_POINTS)
    elif cell.index_name == "c2lsh":
        index = C2LSHIndex(
            points,
            params=C2LSHParams(**C2LSH_PARAMS),
            seed=0,
            base_radius=calibrate_base_radius(points, seed=0),
        )
    elif cell.index_name == "vafile":
        index = VAFileIndex(points, bits=6)
    else:
        raise ValueError(cell.index_name)
    if cell.cache == "none":
        cache = NoCache()
    elif cell.cache == "hc-hff":
        cache = ApproximateCache(
            data["encoder"], CACHE_BYTES, N_POINTS, CachePolicy.HFF
        )
        cache.populate_hff(data["frequencies"], points)
    elif cell.cache == "exact-hff":
        cache = ExactCache(
            DIM, CACHE_BYTES, N_POINTS, value_bytes=4, policy=CachePolicy.HFF
        )
        cache.populate_hff(data["frequencies"], points)
    elif cell.cache == "exact-lru":
        cache = ExactCache(
            DIM, CACHE_BYTES, N_POINTS, value_bytes=4, policy=CachePolicy.LRU
        )
    else:
        raise ValueError(cell.cache)
    point_file = PointFile(points, disk=SimulatedDisk(_disk(cell)))
    engine = QueryEngine.for_index(index, point_file, cache)
    return engine.search_many(data["queries"], K)


def sharded_engine(
    cell: Cell, data, n_shards: int, executor: str, partition="contiguous"
) -> ShardedEngine:
    specs = build_shard_specs(
        data["points"],
        n_shards,
        index_name=cell.index_name,
        index_params=cell.index_params,
        cache_spec=_cache_spec(cell, data),
        frequencies=data["frequencies"],
        partition=partition,
        disk=_disk(cell),
        seed=0,
    )
    return ShardedEngine(specs, executor=executor)


def assert_cell_match(cell: Cell, base, got, label: str) -> None:
    """Per-cell comparison with reproducible failure messages."""
    assert len(base) == len(got)
    for qi, (b, r) in enumerate(zip(base, got)):
        where = f"{cell.name} {label} query={qi} seed={SEED}"
        if not cell.compare_values:
            assert set(b.ids.tolist()) == set(r.ids.tolist()), (
                f"{where}: result id sets {b.ids} != {r.ids}"
            )
            continue
        assert np.array_equal(b.ids, r.ids), (
            f"{where}: ids {b.ids} != {r.ids}"
        )
        assert np.array_equal(b.distances, r.distances), (
            f"{where}: distances differ"
        )
        if cell.compare_mask:
            assert np.array_equal(b.exact_mask, r.exact_mask), (
                f"{where}: exact_mask {b.exact_mask} != {r.exact_mask}"
            )
        if cell.stats_invariant:
            for name in REDUCTION_FIELDS:
                assert getattr(b.stats, name) == getattr(r.stats, name), (
                    f"{where}: stats.{name} "
                    f"{getattr(b.stats, name)} != {getattr(r.stats, name)}"
                )
        io_fields = list(IO_FIELDS) if cell.io_invariant else []
        if cell.gen_io_invariant:
            io_fields.append("gen_page_reads")
        for name in io_fields:
            assert getattr(b.stats, name) == getattr(r.stats, name), (
                f"{where}: stats.{name} "
                f"{getattr(b.stats, name)} != {getattr(r.stats, name)}"
            )


def _stats_tuple(stats) -> tuple:
    return (
        stats.num_candidates,
        stats.cache_hits,
        stats.pruned,
        stats.confirmed,
        stats.c_refine,
        stats.refined_fetches,
        stats.refine_page_reads,
        stats.gen_page_reads,
        stats.leaves_streamed,
        stats.leaf_fetches,
        stats.cached_leaf_hits,
        stats.deferred_fetches,
        stats.points_seen,
    )


# ----------------------------------------------------------------------
# Shard-count invariance (the headline guarantee)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cell", CELLS, ids=lambda c: c.name)
def test_shard_count_invariance(cell: Cell, data) -> None:
    base = baseline_results(cell, data)
    for n_shards in SHARD_COUNTS:
        with sharded_engine(cell, data, n_shards, "serial") as engine:
            got = engine.search_many(data["queries"], K)
        assert_cell_match(cell, base, got, f"shards={n_shards}")


@pytest.mark.parametrize(
    "partition", ["contiguous", "round_robin", "cluster"]
)
def test_partition_strategy_invariance(partition: str, data) -> None:
    """Results do not depend on *how* the dataset is split."""
    cell = CELLS[1]  # linear~hc-hff
    base = baseline_results(cell, data)
    with sharded_engine(cell, data, 3, "serial", partition=partition) as eng:
        got = eng.search_many(data["queries"], K)
    assert_cell_match(cell, base, got, f"partition={partition}")


# ----------------------------------------------------------------------
# Executor invariance + determinism audit
# ----------------------------------------------------------------------
@pytest.mark.parametrize("cell", CELLS, ids=lambda c: c.name)
@pytest.mark.parametrize("executor", EXECUTORS)
def test_executor_invariance(cell: Cell, executor: str, data) -> None:
    """Every executor returns identical results, stats and metrics."""
    with sharded_engine(cell, data, 3, "serial") as reference_engine:
        reference = reference_engine.search_many(data["queries"], K)
        ref_metrics = reference_engine.merged_metrics()
    with sharded_engine(cell, data, 3, executor) as engine:
        got = engine.search_many(data["queries"], K)
        got_metrics = engine.merged_metrics()
    for qi, (b, r) in enumerate(zip(reference, got)):
        where = f"{cell.name} executor={executor} query={qi} seed={SEED}"
        assert np.array_equal(b.ids, r.ids), where
        assert np.array_equal(b.distances, r.distances), where
        assert np.array_equal(b.exact_mask, r.exact_mask), where
        assert _stats_tuple(b.stats) == _stats_tuple(r.stats), where
    for counter in QUERY_COUNTERS:
        assert ref_metrics.value(counter) == got_metrics.value(counter), (
            f"{cell.name} executor={executor}: merged {counter} differs"
        )


def _deterministic_snapshot(registry) -> list:
    """Registry snapshot minus wall-clock artifacts.

    Phase *timing* histograms measure elapsed seconds and legitimately
    vary between runs; every count-valued instrument must not.
    """
    return [
        entry
        for entry in registry.snapshot()["metrics"]
        if entry["name"] != "engine_phase_seconds"
    ]


def test_determinism_across_runs(data) -> None:
    """Two identical runs agree on everything, including ordering."""
    cell = CELLS[1]  # linear~hc-hff
    runs = []
    for _ in range(2):
        with sharded_engine(cell, data, 3, "serial") as engine:
            results = engine.search_many(data["queries"], K)
            metrics = engine.merged_metrics()
        runs.append((results, metrics))
    (first, m1), (second, m2) = runs
    for b, r in zip(first, second):
        assert np.array_equal(b.ids, r.ids)
        assert np.array_equal(b.distances, r.distances)
        assert np.array_equal(b.exact_mask, r.exact_mask)
        assert _stats_tuple(b.stats) == _stats_tuple(r.stats)
    assert _deterministic_snapshot(m1) == _deterministic_snapshot(m2)


def test_full_grid_single_cell(data) -> None:
    """One cell swept over the full shard-count x executor grid."""
    cell = CELLS[1]  # linear~hc-hff
    base = baseline_results(cell, data)
    for n_shards in SHARD_COUNTS:
        for executor in EXECUTORS:
            with sharded_engine(cell, data, n_shards, executor) as engine:
                got = engine.search_many(data["queries"], K)
            assert_cell_match(
                cell, base, got, f"shards={n_shards} executor={executor}"
            )


# ----------------------------------------------------------------------
# Metrics merge reconciliation
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "cell", [CELLS[1], CELLS[8]], ids=lambda c: c.name
)
def test_merged_metrics_reconcile(cell: Cell, data) -> None:
    """Merged counters equal the sum over per-shard registries, and the
    physical totals match the aggregated per-query stats exactly."""
    with sharded_engine(cell, data, 3, "serial") as engine:
        results = engine.search_many(data["queries"], K)
        per_shard = engine.shard_metrics()
        merged = engine.merged_metrics()
    for counter in QUERY_COUNTERS:
        total = sum(reg.value(counter) for reg in per_shard)
        assert merged.value(counter) == total, counter
    # Each shard observes each query once.
    assert merged.value("engine_queries_total") == 3 * len(data["queries"])
    assert merged.value("engine_candidates_total") == sum(
        r.stats.num_candidates for r in results
    )
    assert merged.value("engine_refined_fetches_total") == sum(
        r.stats.refined_fetches for r in results
    )
    assert merged.value("engine_refine_page_reads_total") == sum(
        r.stats.refine_page_reads for r in results
    )


def test_merged_physical_totals_shard_count_invariant(data) -> None:
    """For decomposable cells the merged reduction counters do not
    depend on the shard count (they equal the baseline workload's)."""
    cell = CELLS[1]  # linear~hc-hff
    seen = {}
    for n_shards in SHARD_COUNTS:
        with sharded_engine(cell, data, n_shards, "serial") as engine:
            engine.search_many(data["queries"], K)
            merged = engine.merged_metrics()
        totals = tuple(
            merged.value(c)
            for c in (
                "engine_candidates_total",
                "engine_cache_hits_total",
                "engine_pruned_total",
                "engine_confirmed_total",
                "engine_crefine_total",
            )
        )
        seen[n_shards] = totals
    assert len(set(seen.values())) == 1, f"totals varied: {seen} seed={SEED}"


def test_search_single_query_matches_batch(data) -> None:
    cell = CELLS[1]
    with sharded_engine(cell, data, 2, "serial") as engine:
        batch = engine.search_many(data["queries"], K)
        single = [engine.search(q, K) for q in data["queries"]]
    for b, s in zip(batch, single):
        assert np.array_equal(b.ids, s.ids)
        assert np.array_equal(b.distances, s.distances)
        assert np.array_equal(b.exact_mask, s.exact_mask)
