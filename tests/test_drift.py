"""Drift adaptation: triggers, the controller, hot swaps, shard merge.

The hot-swap differential test is the load-bearing one: swapping a
retrained cache into a live engine must not change a single result id
or distance (cache contents only move bounds and I/O), which is what
makes zero-downtime adaptation safe.
"""

import numpy as np
import pytest

from repro.artifacts.store import read_current
from repro.core.cache import CachePolicy
from repro.eval.methods import build_caching_pipeline
from repro.obs import MetricsRegistry, drift_comparison
from repro.spec import (
    AdaptSection,
    CacheSection,
    DatasetSection,
    IndexSection,
    PipelineSpec,
)
from repro.workload import (
    DecayedSketchWorkload,
    DriftController,
    EveryNQueries,
    HitRatioDrop,
    SketchDistance,
    TrainSpec,
    WindowWorkload,
    attach_workload_hook,
    build_trigger,
)

K = 5
CACHE_BYTES = 24_000


@pytest.fixture(scope="module")
def pipeline(micro_dataset):
    return build_caching_pipeline(
        micro_dataset,
        method="HC-O",
        tau=5,
        cache_bytes=CACHE_BYTES,
        index_name="linear",
        k=K,
    )


def make_controller(pipeline, capacity=64, **kwargs):
    context = pipeline.context
    return DriftController(
        WindowWorkload(capacity=capacity),
        TrainSpec(
            points=context.dataset.points,
            index=context.index,
            k=K,
            method="HC-O",
            tau=5,
            cache_bytes=CACHE_BYTES,
            domain=context.dataset.domain,
        ),
        **kwargs,
    )


class FakeStats:
    def __init__(self, hit_ratio):
        self.hit_ratio = hit_ratio


class TestTriggers:
    def test_every_n_fires_periodically(self):
        trigger = EveryNQueries(3)
        fired = []
        for _ in range(7):
            trigger.note(None)
            if trigger.should_retrain(None):
                fired.append(True)
                trigger.reset(None)
        assert len(fired) == 2

    def test_every_n_zero_never_fires(self):
        trigger = EveryNQueries(0)
        for _ in range(50):
            trigger.note(None)
        assert not trigger.should_retrain(None)

    def test_hit_ratio_drop_fires_after_collapse(self):
        trigger = HitRatioDrop(drop=0.2, window=10)
        for _ in range(10):  # baseline window at 0.9
            trigger.note(FakeStats(0.9))
        assert not trigger.should_retrain(None)
        for _ in range(10):  # collapsed window at 0.3
            trigger.note(FakeStats(0.3))
        assert trigger.should_retrain(None)
        trigger.reset(None)
        assert not trigger.should_retrain(None)
        assert trigger.baseline is None

    def test_hit_ratio_drop_tolerates_small_wobble(self):
        trigger = HitRatioDrop(drop=0.3, window=5)
        for _ in range(5):
            trigger.note(FakeStats(0.8))
        for _ in range(5):
            trigger.note(FakeStats(0.7))  # within the tolerance
        assert not trigger.should_retrain(None)

    def test_hit_ratio_validation(self):
        with pytest.raises(ValueError):
            HitRatioDrop(drop=0.0)
        with pytest.raises(ValueError):
            HitRatioDrop(window=0)

    def test_sketch_distance_fires_on_distribution_shift(self, pipeline):
        controller = make_controller(
            pipeline, trigger=SketchDistance(threshold=0.5, check_every=10)
        )
        hot_a = pipeline.context.dataset.points[:5]
        retrained = 0
        # Phase A: a stable rotating pool (freezes the reference; the
        # live distribution stays on top of it).
        for i in range(20):
            retrained += controller.observe(hot_a[i % 5])
        assert retrained == 0
        # Phase B: a disjoint pool — TV distance crosses the threshold.
        hot_b = pipeline.context.dataset.points[200:205]
        for i in range(40):
            if controller.observe(hot_b[i % 5]):
                retrained += 1
        assert retrained >= 1

    def test_sketch_distance_validation(self):
        with pytest.raises(ValueError):
            SketchDistance(threshold=0.0)
        with pytest.raises(ValueError):
            SketchDistance(check_every=0)

    def test_build_trigger_names(self):
        registry = MetricsRegistry()
        assert isinstance(build_trigger("every-n", 25), EveryNQueries)
        hit = build_trigger("hit-ratio", 0.1, registry=registry)
        assert isinstance(hit, HitRatioDrop)
        assert hit.registry is registry
        assert isinstance(build_trigger("sketch-distance", 0.4), SketchDistance)
        with pytest.raises(ValueError, match="unknown trigger"):
            build_trigger("hourly")


class TestDriftController:
    def test_spec_validation(self, pipeline):
        context = pipeline.context
        from repro.workload.train import derivation_from_context

        with pytest.raises(ValueError, match="derivation"):
            DriftController(
                WindowWorkload(),
                TrainSpec(
                    points=context.dataset.points,
                    index=context.index,
                    derivation=derivation_from_context(context),
                ),
            )
        with pytest.raises(ValueError, match="index"):
            DriftController(
                WindowWorkload(), TrainSpec(points=context.dataset.points)
            )

    def test_observe_triggers_retrain(self, pipeline):
        controller = make_controller(pipeline, trigger=EveryNQueries(10))
        queries = pipeline.context.dataset.query_log.workload
        fired = [controller.observe(q) for q in queries[:25]]
        assert sum(fired) == 2
        assert controller.retrains == 2
        assert controller.cache is not None
        assert controller.last_report.window_size > 0
        assert controller.last_report.cache_items > 0

    def test_ingest_folds_a_collected_sketch(self, pipeline):
        """Replaying a sketch preserves its distinct queries and weights."""
        controller = make_controller(pipeline, capacity=20_000)
        sketch = DecayedSketchWorkload(decay=1.0)
        uniq = np.unique(
            pipeline.context.dataset.query_log.workload, axis=0
        )[:8]
        sketch.record_batch(uniq)
        controller.ingest(sketch)
        distinct, weights = controller.model.distinct()
        np.testing.assert_array_equal(distinct, np.unique(uniq, axis=0))
        # Equal sketch weights quantize to WEIGHT_RESOLUTION each.
        assert set(weights.tolist()) == {1024}
        report = controller.retrain()
        assert report.distinct_queries == 8

    def test_publish_writes_versioned_snapshots(self, pipeline, tmp_path):
        registry = MetricsRegistry()
        controller = make_controller(
            pipeline, snapshot_root=tmp_path, metrics=registry
        )
        controller.model.record_batch(
            pipeline.context.dataset.query_log.workload[:20]
        )
        first = controller.retrain()
        second = controller.retrain()
        assert first.snapshot_path.endswith("snap-000001")
        assert second.snapshot_path.endswith("snap-000002")
        # CURRENT atomically points at the latest publish.
        assert read_current(tmp_path).name == "snap-000002"
        assert registry.value("cache_rebuild_total") == 2
        assert registry.value("snapshot_load_total", kind="cache") == 2

    def test_retrained_cache_serves_correct_answers(self, pipeline):
        """The published-and-reloaded cache returns exact k-NN results."""
        controller = make_controller(pipeline)
        dataset = pipeline.context.dataset
        controller.model.record_batch(dataset.query_log.workload[:30])
        controller.retrain()
        from repro.core.search import CachedKNNSearch

        searcher = CachedKNNSearch(
            pipeline.context.index,
            pipeline.context.point_file,
            controller.cache,
        )
        for query in dataset.query_log.test[:4]:
            result = searcher.search(query, K)
            d = np.linalg.norm(dataset.points - query, axis=1)
            kth = np.sort(d)[K - 1]
            assert np.all(d[result.ids] <= kth + 1e-9)


class TestHotSwapDifferential:
    def test_swap_changes_no_answers(self, micro_dataset):
        """Zero bit-wrong queries during a hot swap (acceptance criterion)."""
        adaptive = build_caching_pipeline(
            micro_dataset, method="HC-O", tau=5,
            cache_bytes=CACHE_BYTES, index_name="linear", k=K,
        )
        control = build_caching_pipeline(
            micro_dataset, method="HC-O", tau=5,
            cache_bytes=CACHE_BYTES, index_name="linear", k=K,
        )
        controller = make_controller(adaptive, engine=adaptive.engine)
        # Train on a *different* (shifted) workload so the swapped cache
        # genuinely differs from the control's.
        controller.model.record_batch(micro_dataset.points[300:350])
        old_cache = adaptive.cache
        controller.retrain()
        assert adaptive.engine.cache is not old_cache
        mismatches = 0
        for query in micro_dataset.query_log.test:
            a = adaptive.search(query, K)
            b = control.search(query, K)
            true_d = np.linalg.norm(micro_dataset.points - query, axis=1)
            # The answer *set* is cache-invariant; distances are exact
            # wherever flagged, guaranteed upper bounds elsewhere (bound
            # tightness — and hence presentation order — may differ).
            ok = (
                a.outcome.complete
                and b.outcome.complete
                and np.array_equal(np.sort(a.ids), np.sort(b.ids))
                and np.allclose(a.distances[a.exact_mask],
                                true_d[a.ids[a.exact_mask]])
                and np.all(a.distances >= true_d[a.ids] - 1e-9)
            )
            mismatches += 0 if ok else 1
        assert mismatches == 0

    def test_swap_counter_increments(self, pipeline, micro_dataset):
        registry = MetricsRegistry()
        adaptive = build_caching_pipeline(
            micro_dataset, method="HC-O", tau=5,
            cache_bytes=CACHE_BYTES, index_name="linear", k=K,
        )
        controller = make_controller(
            adaptive, engine=adaptive.engine, metrics=registry
        )
        controller.model.record_batch(micro_dataset.query_log.workload[:20])
        controller.retrain()
        assert registry.value("cache_swap_total") == 1


class TestWorkloadHook:
    def test_hook_records_served_queries(self, micro_dataset):
        pipeline = build_caching_pipeline(
            micro_dataset, method="HC-W", tau=4,
            cache_bytes=CACHE_BYTES, index_name="linear", k=K,
        )
        model = WindowWorkload(capacity=100)
        hook = attach_workload_hook(pipeline.engine, model=model)
        queries = micro_dataset.query_log.test[:6]
        for q in queries:
            pipeline.search(q, K)
        assert hook.observed == 6
        np.testing.assert_array_equal(model.queries(), queries)

    def test_hook_drives_controller_retrains(self, micro_dataset):
        pipeline = build_caching_pipeline(
            micro_dataset, method="HC-O", tau=5,
            cache_bytes=CACHE_BYTES, index_name="linear", k=K,
        )
        controller = make_controller(
            pipeline, engine=pipeline.engine, trigger=EveryNQueries(4)
        )
        attach_workload_hook(pipeline.engine, controller=controller)
        for q in micro_dataset.query_log.workload[:9]:
            pipeline.search(q, K)
        assert controller.retrains == 2

    def test_hook_requires_a_target(self):
        from repro.workload.hook import WorkloadHook

        with pytest.raises(ValueError):
            WorkloadHook()


class TestShardedWorkloadCollection:
    def test_per_shard_models_merge_at_reduce_time(self):
        from repro.shard import ShardedEngine, build_shard_specs

        rng = np.random.default_rng(3)
        points = np.rint(rng.uniform(0, 100, size=(90, 4)))
        specs = build_shard_specs(
            points, 3, workload={"kind": "sketch", "decay": 1.0}
        )
        engine = ShardedEngine(specs, executor="serial")
        try:
            queries = np.rint(rng.uniform(0, 100, size=(5, 4)))
            for q in queries:
                engine.search(q, 3)
            shard_models = engine.shard_workloads()
            assert len(shard_models) == 3
            merged = engine.merged_workload()
        finally:
            engine.close()
        # Every shard sees every query, so the merged sketch holds each
        # distinct query with weight n_shards.
        assert len(merged) == len(queries)
        for weight in merged.effective_weights().values():
            assert weight == pytest.approx(3.0)

    def test_no_recipe_means_no_collection(self):
        from repro.shard import ShardedEngine, build_shard_specs

        rng = np.random.default_rng(4)
        points = np.rint(rng.uniform(0, 100, size=(40, 3)))
        engine = ShardedEngine(
            build_shard_specs(points, 2), executor="serial"
        )
        try:
            engine.search(points[0], 2)
            assert engine.merged_workload() is None
        finally:
            engine.close()


class TestAdaptSpecBuild:
    def test_spec_round_trips_adapt_section(self):
        spec = PipelineSpec(
            adapt=AdaptSection(enabled=True, every=50, model="sketch")
        )
        clone = PipelineSpec.from_json(spec.to_json())
        assert clone.adapt == spec.adapt

    def test_built_pipeline_carries_a_controller(self, micro_dataset):
        spec = PipelineSpec(
            dataset=DatasetSection(name="micro"),
            index=IndexSection(name="linear"),
            cache=CacheSection(method="HC-O", tau=5, cache_bytes=CACHE_BYTES),
            adapt=AdaptSection(enabled=True, every=5),
            k=K,
        )
        pipeline = spec.build(dataset=micro_dataset)
        assert pipeline.drift_controller is not None
        for q in micro_dataset.query_log.workload[:11]:
            pipeline.search(q, K)
        assert pipeline.drift_controller.retrains == 2

    def test_adapt_rejects_non_global_methods(self, micro_dataset):
        spec = PipelineSpec(
            dataset=DatasetSection(name="micro"),
            index=IndexSection(name="linear"),
            cache=CacheSection(method="EXACT", cache_bytes=CACHE_BYTES),
            adapt=AdaptSection(enabled=True, every=5),
            k=K,
        )
        with pytest.raises(ValueError, match="adapt"):
            spec.build(dataset=micro_dataset)


class TestDriftView:
    def test_drift_view_reports_observed_vs_predicted(self, micro_dataset):
        registry = MetricsRegistry()
        pipeline = build_caching_pipeline(
            micro_dataset, method="HC-O", tau=5,
            cache_bytes=CACHE_BYTES, index_name="linear", k=K,
            metrics=registry,
        )
        controller = make_controller(pipeline, engine=pipeline.engine)
        controller.model.record_batch(micro_dataset.query_log.workload[:30])
        controller.retrain()
        for q in micro_dataset.query_log.test[:5]:
            pipeline.search(q, K)
        view = controller.drift_view(registry)
        assert set(view) == {"rho_hit", "rho_refine"}
        assert 0.0 <= view["rho_hit"]["observed"] <= 1.0
        assert view["rho_hit"]["predicted"] is not None

    def test_drift_view_requires_a_plan(self, pipeline):
        controller = make_controller(pipeline)
        with pytest.raises(ValueError, match="no plan"):
            controller.drift_view(MetricsRegistry())

    def test_drift_comparison_summarizes_recovery(self):
        before = {
            "rho_hit": {"observed": 0.3, "predicted": 0.8, "drift": -0.5},
            "rho_refine": {"observed": 0.6, "predicted": None, "drift": None},
        }
        after = {
            "rho_hit": {"observed": 0.75, "predicted": 0.8, "drift": -0.05},
            "rho_refine": {"observed": 0.5, "predicted": None, "drift": None},
        }
        summary = drift_comparison(before, after)
        assert summary["rho_hit"]["observed_delta"] == pytest.approx(0.45)
        assert summary["rho_hit"]["drift_recovered"] == pytest.approx(0.45)
        assert summary["rho_refine"]["drift_recovered"] is None
        assert summary["rho_refine"]["observed_delta"] == pytest.approx(-0.1)
