"""Differential harness: micro-batched serving is bit-identical to
per-query ``search()`` for any arrival interleaving.

The guarantee, per (index family x cache mode) cell and bound kernel:
answers served through the :class:`~repro.serve.Server`'s queue and
dynamic micro-batcher — under seeded random arrival times, random pump
interleavings and random batching parameters — equal the answers a twin
engine produces by calling ``search()`` once per query, in ids,
distances *and* ``exact_mask``.

The twin replays queries in the server's service order (FIFO admission
order), which makes the comparison exact even for the LRU cell, whose
dynamic cache state depends on execution order.  Every randomized input
derives from ``SEED`` below; assertion messages carry the cell name,
kernel and schedule seed so failures reproduce with
``np.random.default_rng(seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import pytest

from repro.core.builders import build_equidepth
from repro.core.cache import (
    ApproximateCache,
    CachePolicy,
    ExactCache,
    LeafNodeCache,
)
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.engine.engine import QueryEngine
from repro.index.idistance import IDistanceIndex
from repro.index.linear_scan import LinearScanIndex
from repro.index.vafile import VAFileIndex
from repro.lsh.c2lsh import C2LSHIndex, C2LSHParams, calibrate_base_radius
from repro.serve import ManualClock, ServeConfig, Server
from repro.storage.disk import DiskConfig, SimulatedDisk
from repro.storage.pointfile import PointFile

SEED = 20260807
N_POINTS = 260
DIM = 5
K = 5
N_QUERIES = 10
SCHEDULE_SEEDS = (1, 2, 3)
CACHE_BYTES = 1 << 11
KERNELS = ("decode", "numpy")
C2LSH_PARAMS = {"beta": 1.0, "n_hashes": 16}


@dataclass(frozen=True)
class Cell:
    """One (index family x cache mode) entry of the guarantee matrix."""

    name: str
    index_name: str
    cache: str  # hc-hff | exact-hff | exact-lru | leaf
    index_params: dict = field(default_factory=dict)
    kernels: tuple = (None,)  # exact caches compute distances, not bounds


CELLS = (
    Cell("linear~hc-hff", "linear", "hc-hff", kernels=KERNELS),
    Cell(
        "c2lsh~hc-hff", "c2lsh", "hc-hff",
        index_params=C2LSH_PARAMS, kernels=KERNELS,
    ),
    Cell("vafile~hc-hff", "vafile", "hc-hff", kernels=KERNELS),
    Cell("linear~exact-hff", "linear", "exact-hff"),
    Cell("linear~exact-lru", "linear", "exact-lru"),
    Cell("idistance~leaf", "idistance", "leaf", kernels=KERNELS),
)

CASES = [
    (cell, kernel)
    for cell in CELLS
    for kernel in cell.kernels
]


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(SEED)
    points = rng.normal(size=(N_POINTS, DIM))
    queries = rng.normal(size=(N_QUERIES, DIM))
    frequencies = rng.integers(0, 9, size=N_POINTS).astype(np.int64)
    encoder = GlobalHistogramEncoder(
        build_equidepth(ValueDomain.from_points(points), 16), DIM
    )
    return {
        "points": points,
        "queries": queries,
        "frequencies": frequencies,
        "encoder": encoder,
    }


def make_engine(cell: Cell, data, kernel: str | None) -> QueryEngine:
    """A fresh engine for this cell; twin builds are byte-identical."""
    points = data["points"]
    if cell.index_name == "idistance":
        index = IDistanceIndex(points, seed=0, value_bytes=4)
        cache = LeafNodeCache(data["encoder"], CACHE_BYTES, kernel=kernel)
        freqs = index.leaf_access_frequencies(data["queries"], K)
        cache.populate_by_frequency(freqs, index.leaf_contents)
        return QueryEngine.for_tree(index, cache)
    if cell.index_name == "linear":
        index = LinearScanIndex(N_POINTS)
    elif cell.index_name == "c2lsh":
        index = C2LSHIndex(
            points,
            params=C2LSHParams(**cell.index_params),
            seed=0,
            base_radius=calibrate_base_radius(points, seed=0),
        )
    elif cell.index_name == "vafile":
        index = VAFileIndex(points, bits=6)
    else:
        raise ValueError(cell.index_name)
    if cell.cache == "hc-hff":
        cache = ApproximateCache(
            data["encoder"], CACHE_BYTES, N_POINTS, CachePolicy.HFF,
            kernel=kernel,
        )
        cache.populate_hff(data["frequencies"], points)
    elif cell.cache == "exact-hff":
        cache = ExactCache(
            DIM, CACHE_BYTES, N_POINTS, value_bytes=4, policy=CachePolicy.HFF
        )
        cache.populate_hff(data["frequencies"], points)
    elif cell.cache == "exact-lru":
        cache = ExactCache(
            DIM, CACHE_BYTES, N_POINTS, value_bytes=4, policy=CachePolicy.LRU
        )
    else:
        raise ValueError(cell.cache)
    point_file = PointFile(points, disk=SimulatedDisk(DiskConfig()))
    return QueryEngine.for_index(index, point_file, cache)


def random_schedule(rng: np.random.Generator) -> tuple[ServeConfig, list]:
    """Seeded batching parameters plus an arrival interleaving.

    The schedule is a list of events: ``("advance", seconds)``,
    ``("submit", query_index)`` and ``("pump",)`` — covering bursts
    (several submits, no time), paced trickles (advances between
    submits) and opportunistic partial flushes (interleaved pumps).
    """
    config = ServeConfig(
        max_queue_depth=64,
        max_batch=int(rng.integers(1, 6)),
        max_wait_us=float(rng.choice([0.0, 500.0, 2000.0])),
    )
    order = rng.permutation(N_QUERIES)
    events: list = []
    for idx in order:
        if rng.random() < 0.7:
            events.append(("advance", float(rng.uniform(0.0, 0.002))))
        events.append(("submit", int(idx)))
        if rng.random() < 0.5:
            events.append(("pump",))
    return config, events


def serve_schedule(engine: QueryEngine, config: ServeConfig, events) -> list:
    """Run one interleaving; returns (query_index, result) in FIFO
    service order."""
    clock = ManualClock()
    server = Server(engine, config=config, default_k=K, clock=clock)
    tickets: list = []  # (query_index, ticket), in submission order
    queries = serve_schedule.queries
    for event in events:
        if event[0] == "advance":
            clock.advance(event[1])
        elif event[0] == "submit":
            tickets.append((event[1], server.submit(queries[event[1]])))
        else:
            server.pump()
    server.close()  # drains whatever the schedule left queued
    assert all(t.done for _, t in tickets), "a request was dropped"
    return [(idx, t.response.result) for idx, t in tickets]


@pytest.mark.parametrize(
    ("cell", "kernel"),
    CASES,
    ids=[f"{c.name}-{k or 'exact'}" for c, k in CASES],
)
def test_serve_matches_per_query_search(cell: Cell, kernel, data) -> None:
    serve_schedule.queries = data["queries"]
    for schedule_seed in SCHEDULE_SEEDS:
        rng = np.random.default_rng(schedule_seed)
        config, events = random_schedule(rng)
        served = serve_schedule(make_engine(cell, data, kernel), config, events)
        # Twin engine, same build; replayed per-query in service order so
        # even order-sensitive (LRU) cache state evolves identically.
        twin = make_engine(cell, data, kernel)
        for idx, result in served:
            base = twin.search(data["queries"][idx], K)
            where = (
                f"{cell.name} kernel={kernel} schedule={schedule_seed} "
                f"query={idx} batch<={config.max_batch} "
                f"wait={config.max_wait_us}us seed={SEED}"
            )
            assert np.array_equal(base.ids, result.ids), (
                f"{where}: ids {base.ids} != {result.ids}"
            )
            assert np.array_equal(base.distances, result.distances), (
                f"{where}: distances differ"
            )
            assert np.array_equal(base.exact_mask, result.exact_mask), (
                f"{where}: exact_mask {base.exact_mask} != {result.exact_mask}"
            )


def test_interleavings_actually_vary() -> None:
    """The schedule generator produces distinct batching shapes (guards
    against the suite silently degenerating into one interleaving)."""
    shapes = set()
    for schedule_seed in SCHEDULE_SEEDS:
        config, events = random_schedule(np.random.default_rng(schedule_seed))
        shapes.add(
            (config.max_batch, config.max_wait_us,
             tuple(e[0] for e in events))
        )
    assert len(shapes) == len(SCHEDULE_SEEDS)


def test_kernels_agree_through_the_server(data) -> None:
    """Both bound kernels serve byte-identical answers (speed knob only)."""
    serve_schedule.queries = data["queries"]
    cell = CELLS[0]
    config, events = random_schedule(np.random.default_rng(SCHEDULE_SEEDS[0]))
    by_kernel = {
        kernel: serve_schedule(make_engine(cell, data, kernel), config, events)
        for kernel in KERNELS
    }
    first, second = (by_kernel[k] for k in KERNELS)
    for (idx_a, a), (idx_b, b) in zip(first, second):
        assert idx_a == idx_b
        assert np.array_equal(a.ids, b.ids)
        assert np.array_equal(a.distances, b.distances)
        assert np.array_equal(a.exact_mask, b.exact_mask)
