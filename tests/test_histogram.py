"""Unit and property tests for the Histogram container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domain import ValueDomain
from repro.core.histogram import Histogram


def _simple_domain():
    return ValueDomain(
        np.array([0.0, 2.0, 5.0, 7.0, 11.0]), np.array([3, 1, 4, 1, 5])
    )


class TestConstruction:
    def test_from_splits_tight_buckets(self):
        dom = _simple_domain()
        hist = Histogram.from_splits(dom, np.array([0, 2, 4]))
        assert hist.lowers.tolist() == [0.0, 5.0, 11.0]
        assert hist.uppers.tolist() == [2.0, 7.0, 11.0]
        assert hist.frequencies.tolist() == [4, 5, 5]

    def test_from_splits_requires_leading_zero(self):
        with pytest.raises(ValueError):
            Histogram.from_splits(_simple_domain(), np.array([1, 3]))

    def test_from_splits_rejects_overflow(self):
        with pytest.raises(ValueError):
            Histogram.from_splits(_simple_domain(), np.array([0, 7]))

    def test_identity(self):
        dom = _simple_domain()
        hist = Histogram.identity(dom)
        assert hist.num_buckets == dom.size
        assert np.all(hist.widths == 0)

    def test_rejects_overlap(self):
        with pytest.raises(ValueError):
            Histogram(np.array([0.0, 1.0]), np.array([2.0, 3.0]))

    def test_rejects_inverted_bucket(self):
        with pytest.raises(ValueError):
            Histogram(np.array([2.0]), np.array([1.0]))

    def test_rejects_mismatched_frequencies(self):
        with pytest.raises(ValueError):
            Histogram(np.array([0.0]), np.array([1.0]), np.array([1, 2]))


class TestLookup:
    def test_code_length(self):
        dom = _simple_domain()
        assert Histogram.from_splits(dom, np.array([0])).code_length == 1
        assert Histogram.from_splits(dom, np.array([0, 2, 3, 4])).code_length == 2
        assert Histogram.identity(dom).code_length == 3

    def test_lookup_members(self):
        dom = _simple_domain()
        hist = Histogram.from_splits(dom, np.array([0, 2, 4]))
        codes = hist.lookup(np.array([0.0, 2.0, 5.0, 7.0, 11.0]))
        assert codes.tolist() == [0, 0, 1, 1, 2]

    def test_lookup_rejects_beyond_range(self):
        # Out-of-domain values used to clamp silently, making the encoded
        # rectangle exclude the point and the derived lower bound unsound.
        dom = _simple_domain()
        hist = Histogram.from_splits(dom, np.array([0, 2]))
        with pytest.raises(ValueError, match="outside every histogram bucket"):
            hist.lookup(np.array([999.0]))
        with pytest.raises(ValueError, match="outside every histogram bucket"):
            hist.lookup(np.array([-999.0]))
        # Non-strict lookup keeps the clamping behavior for diagnostics.
        assert hist.lookup(np.array([999.0]), strict=False)[0] == (
            hist.num_buckets - 1
        )
        assert hist.lookup(np.array([-999.0]), strict=False)[0] == 0

    def test_covers_members(self):
        dom = _simple_domain()
        hist = Histogram.from_splits(dom, np.array([0, 1, 3]))
        assert hist.covers(dom.values).all()

    def test_decode_bounds_roundtrip(self):
        dom = _simple_domain()
        hist = Histogram.from_splits(dom, np.array([0, 2]))
        codes = hist.lookup(dom.values)
        lo, hi = hist.decode_bounds(codes)
        assert np.all(lo <= dom.values)
        assert np.all(dom.values <= hi)

    def test_decode_bounds_rejects_bad_code(self):
        hist = Histogram(np.array([0.0]), np.array([1.0]))
        with pytest.raises(IndexError):
            hist.decode_bounds(np.array([5]))

    def test_interval(self):
        hist = Histogram(np.array([0.0, 3.0]), np.array([1.0, 8.0]))
        assert hist.interval(1) == (3.0, 8.0)

    def test_storage_bytes_positive(self):
        hist = Histogram(np.array([0.0]), np.array([1.0]))
        assert hist.storage_bytes() >= 16


@given(
    values=st.lists(
        st.integers(0, 1000), min_size=2, max_size=60, unique=True
    ),
    n_splits=st.integers(1, 8),
    seed=st.integers(0, 100),
)
@settings(max_examples=60, deadline=None)
def test_property_membership_always_covered(values, n_splits, seed):
    """Every domain value decodes to a bucket that contains it."""
    values = np.sort(np.asarray(values, dtype=np.float64))
    dom = ValueDomain(values, np.ones(len(values), dtype=np.int64))
    rng = np.random.default_rng(seed)
    cuts = rng.choice(
        np.arange(1, dom.size), size=min(n_splits, dom.size - 1), replace=False
    )
    starts = np.sort(np.concatenate([[0], cuts]))
    hist = Histogram.from_splits(dom, starts)
    codes = hist.lookup(values)
    lo, hi = hist.decode_bounds(codes)
    assert np.all(lo <= values)
    assert np.all(values <= hi)
