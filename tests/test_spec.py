"""The declarative ``PipelineSpec``: serialization, strictness, building.

The spec is the single construction path — every test here guards the
property that makes snapshot artifacts trustworthy: a spec round-tripped
through JSON/TOML rebuilds exactly the pipeline the original described.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.runner import Experiment
from repro.spec.build import build_pipeline, spec_from_kwargs
from repro.spec.sections import (
    CacheSection,
    DatasetSection,
    IndexSection,
    PipelineSpec,
    ShardSection,
)


class TestSerialization:
    def test_dict_round_trip(self):
        spec = PipelineSpec(
            dataset=DatasetSection(name="tiny", scale=0.5, seed=3),
            index=IndexSection(name="vafile", params={"bits_per_dim": 4}),
            cache=CacheSection(method="HC-D", tau=6, cache_bytes=1 << 16),
            shard=ShardSection(n_shards=2, executor="thread"),
            k=5,
            ordering="hff",
            seed=3,
        )
        assert PipelineSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self):
        spec = PipelineSpec(k=7, seed=11)
        assert PipelineSpec.from_json(spec.to_json()) == spec

    def test_toml_round_trip(self):
        spec = PipelineSpec(
            index=IndexSection(name="linear"),
            cache=CacheSection(method="EXACT", cache_bytes=4096),
        )
        toml = "\n".join(
            [
                "k = 10",
                'ordering = "raw"',
                "seed = 0",
                "[dataset]",
                'name = "tiny"',
                "[index]",
                'name = "linear"',
                "[cache]",
                'method = "EXACT"',
                "cache_bytes = 4096",
            ]
        )
        loaded = PipelineSpec.from_toml(toml)
        assert loaded.index.name == "linear"
        assert loaded.cache == spec.cache

    def test_save_load_file(self, tmp_path):
        spec = PipelineSpec(cache=CacheSection(tau=5))
        path = spec.save(tmp_path / "spec.json")
        assert PipelineSpec.load(path) == spec

    def test_defaults_round_trip(self):
        assert PipelineSpec.from_dict(PipelineSpec().to_dict()) == PipelineSpec()


class TestStrictness:
    def test_unknown_top_level_key(self):
        with pytest.raises(ValueError, match="unknown key"):
            PipelineSpec.from_dict({"k": 10, "frobnicate": 1})

    def test_unknown_section_key(self):
        with pytest.raises(ValueError, match="unknown key.*cache"):
            PipelineSpec.from_dict({"cache": {"method": "HC-O", "size": 1}})

    def test_section_must_be_table(self):
        with pytest.raises(ValueError, match="table/object"):
            PipelineSpec.from_dict({"index": "c2lsh"})

    def test_spec_must_be_dict(self):
        with pytest.raises(ValueError):
            PipelineSpec.from_dict([1, 2])


class TestBuild:
    def test_unknown_method_rejected(self, tiny_dataset):
        spec = PipelineSpec(cache=CacheSection(method="NOT-A-METHOD"))
        with pytest.raises(ValueError, match="unknown method"):
            build_pipeline(spec, dataset=tiny_dataset)

    def test_point_pipeline_carries_spec(self, tiny_dataset, tiny_context):
        spec = spec_from_kwargs(
            dataset=tiny_dataset, method="HC-O", tau=8,
            cache_bytes=1 << 16, index_name="c2lsh",
        )
        pipeline = build_pipeline(
            spec, dataset=tiny_dataset, context=tiny_context
        )
        assert pipeline.spec == spec
        assert pipeline.method == "HC-O"

    def test_tree_pipeline_carries_spec(self, micro_dataset):
        spec = PipelineSpec(
            dataset=DatasetSection(name="micro"),
            index=IndexSection(name="vptree"),
            cache=CacheSection(method="EXACT", cache_bytes=1 << 14),
        )
        pipeline = build_pipeline(spec, dataset=micro_dataset)
        assert pipeline.spec == spec
        q = micro_dataset.query_log.test[0]
        result = pipeline.search(q, 5)
        assert len(result.ids) == 5

    def test_round_tripped_spec_builds_identical_pipeline(
        self, tiny_dataset, tiny_context
    ):
        spec = spec_from_kwargs(
            dataset=tiny_dataset, method="HC-O", tau=8,
            cache_bytes=1 << 16, index_name="c2lsh",
        )
        round_tripped = PipelineSpec.from_json(spec.to_json())
        a = build_pipeline(spec, dataset=tiny_dataset, context=tiny_context)
        b = build_pipeline(
            round_tripped, dataset=tiny_dataset, context=tiny_context
        )
        for q in tiny_dataset.query_log.test[:4]:
            ra, rb = a.search(q, 10), b.search(q, 10)
            assert np.array_equal(ra.ids, rb.ids)
            assert np.array_equal(ra.distances, rb.distances)
            assert ra.stats.page_reads == rb.stats.page_reads


class TestExperimentBridge:
    def test_to_spec_records_configuration(self, tiny_dataset):
        exp = Experiment(
            tiny_dataset, method="HC-D", k=5, tau=6,
            cache_bytes=1 << 15, index_name="vafile", seed=2,
        )
        spec = exp.to_spec()
        assert spec.cache.method == "HC-D"
        assert spec.cache.tau == 6
        assert spec.cache.cache_bytes == 1 << 15
        assert spec.index.name == "vafile"
        assert spec.k == 5
        assert spec.seed == 2

    def test_from_spec_inverts_to_spec(self, tiny_dataset):
        exp = Experiment(
            tiny_dataset, method="HC-O", k=7, tau=9,
            cache_bytes=1 << 14, index_name="c2lsh", seed=4,
        )
        back = Experiment.from_spec(exp.to_spec(), tiny_dataset)
        assert back.method == exp.method
        assert back.k == exp.k
        assert back.tau == exp.tau
        assert back.cache_bytes == exp.cache_bytes
        assert back.index_name == exp.index_name
        assert back.seed == exp.seed
