"""Candidate reduction: thresholds, pruning and true-result detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reduction import reduce_candidates


def _reduce(ids, lb, ub, k, hits=None):
    ids = np.asarray(ids)
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    if hits is None:
        hits = np.isfinite(ub)
    return reduce_candidates(ids, hits, lb, ub, k)


class TestPaperExample:
    def test_figure4_multistep_setup(self):
        """Paper Fig. 4: 4 candidates, k=2; p1 confirmed, p4 pruned."""
        ids = [1, 2, 3, 4]
        lb = [0.5, 1.5, 2.5, 4.5]
        ub = [1.0, 3.0, 5.0, 6.0]
        out = _reduce(ids, lb, ub, 2)
        # ub_2 = 3.0 -> p4 (lb 4.5) pruned; lb_2 = 1.5 -> p1 (ub 1.0) true.
        assert out.pruned_ids.tolist() == [4]
        assert out.confirmed_ids.tolist() == [1]
        assert sorted(out.remaining_ids.tolist()) == [2, 3]
        assert out.lb_k == 1.5
        assert out.ub_k == 3.0

    def test_table1_example(self):
        """Paper Table 1: bounds for p1..p4 at q=(9,11), k=1."""
        ids = [1, 2, 3, 4]
        lb = [5.39, 5.00, 14.76, 15.52]
        ub = [15.0, 13.42, 24.41, 24.60]
        out = _reduce(ids, lb, ub, 1)
        assert sorted(out.pruned_ids.tolist()) == [3, 4]
        assert sorted(out.remaining_ids.tolist()) == [1, 2]
        assert out.confirmed_ids.size == 0


class TestMechanics:
    def test_misses_never_pruned(self):
        ids = [1, 2, 3]
        lb = [0.0, 0.0, 9.0]
        ub = [np.inf, np.inf, 10.0]
        out = _reduce(ids, lb, ub, 1)
        assert 1 in out.remaining_ids and 2 in out.remaining_ids

    def test_remaining_sorted_by_lower_bound(self):
        out = _reduce([1, 2, 3], [3.0, 1.0, 2.0], [30.0, 10.0, 20.0], 3)
        assert out.remaining_ids.tolist() == [2, 3, 1]
        assert list(out.remaining_lb) == [1.0, 2.0, 3.0]

    def test_k_larger_than_candidates(self):
        out = _reduce([1, 2], [1.0, 2.0], [3.0, 4.0], 10)
        assert out.ub_k == np.inf
        assert out.pruned_ids.size == 0

    def test_inconsistent_bounds_rejected(self):
        with pytest.raises(ValueError):
            _reduce([1], [5.0], [1.0], 1)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            reduce_candidates(
                np.array([1, 2]), np.array([True]), np.zeros(2), np.ones(2), 1
            )

    def test_counts_add_up(self):
        rng = np.random.default_rng(0)
        lb = rng.uniform(0, 10, 50)
        ub = lb + rng.uniform(0, 5, 50)
        out = _reduce(np.arange(50), lb, ub, 5)
        assert out.num_candidates == 50
        assert out.c_refine == len(out.remaining_ids)
        assert out.num_pruned == len(out.pruned_ids) + len(out.confirmed_ids)


@given(seed=st.integers(0, 2**16), k=st.integers(1, 8), n=st.integers(1, 60))
@settings(max_examples=100, deadline=None)
def test_property_reduction_is_safe(seed, k, n):
    """No true kNN member is ever pruned; confirmed members are true.

    Simulates exact distances inside [lb, ub] and checks the decisions
    against the realized distances.
    """
    rng = np.random.default_rng(seed)
    dist = rng.uniform(0, 100, size=n)
    slack_lo = rng.uniform(0, 20, size=n)
    slack_hi = rng.uniform(0, 20, size=n)
    lb = dist - slack_lo
    ub = dist + slack_hi
    lb[lb < 0] = 0.0
    out = _reduce(np.arange(n), lb, ub, k)
    kth = np.sort(dist)[min(k, n) - 1]
    # Anything strictly closer than the k-th distance must survive.
    for pid in np.flatnonzero(dist < kth - 1e-12):
        assert pid not in out.pruned_ids
    # Confirmed candidates must be genuine top-k members.
    for pid in out.confirmed_ids:
        assert dist[pid] <= kth + 1e-12
    # Never more than k candidates confirmed without refinement.
    assert len(out.confirmed_ids) <= k
