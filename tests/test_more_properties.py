"""Additional property tests on core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builders import build_equidepth
from repro.core.cache import LeafNodeCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.index.vaplus import VAPlusFileIndex


class TestEquiDepthBalance:
    @given(
        seed=st.integers(0, 2**12),
        m=st.integers(16, 200),
        n_buckets=st.integers(2, 16),
    )
    @settings(max_examples=50, deadline=None)
    def test_property_masses_are_balanced(self, seed, m, n_buckets):
        """With unit frequencies, every equi-depth bucket holds at most
        ceil(m / B) + 1 values (quantile split granularity)."""
        rng = np.random.default_rng(seed)
        values = np.sort(rng.choice(10_000, size=m, replace=False)).astype(float)
        dom = ValueDomain(values, np.ones(m, dtype=np.int64))
        hist = build_equidepth(dom, n_buckets)
        cap = -(-m // n_buckets) + 1
        assert int(hist.frequencies.max()) <= cap
        assert int(hist.frequencies.sum()) == m


class TestLeafCacheBounds:
    @given(seed=st.integers(0, 2**12), n=st.integers(5, 60), d=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_property_leaf_bounds_sandwich(self, seed, n, d):
        rng = np.random.default_rng(seed)
        points = np.rint(rng.uniform(0, 255, size=(n, d)))
        dom = ValueDomain.from_points(points)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 8), d)
        cache = LeafNodeCache(enc, 1 << 16)
        assert cache.try_add(0, np.arange(n), points)
        query = rng.uniform(0, 255, size=d)
        ids, lb, ub = cache.lookup(query, 0)
        dist = np.linalg.norm(points - query, axis=1)
        assert np.all(lb <= dist + 1e-9)
        assert np.all(dist <= ub + 1e-9)


class TestVAPlusAllocation:
    @given(
        seed=st.integers(0, 2**10),
        d=st.integers(2, 12),
        bits_per_dim=st.integers(1, 8),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_bit_budget_exact(self, seed, d, bits_per_dim):
        rng = np.random.default_rng(seed)
        variances = rng.uniform(0.01, 100.0, size=d)
        total = bits_per_dim * d
        bits = VAPlusFileIndex._allocate_bits(variances, total)
        assert bits.sum() == total
        assert np.all(bits >= 0)

    def test_allocation_prefers_high_variance(self):
        variances = np.array([100.0, 1.0, 0.01])
        bits = VAPlusFileIndex._allocate_bits(variances, 9)
        assert bits[0] >= bits[1] >= bits[2]


class TestDomainProjection:
    @given(seed=st.integers(0, 2**12), m=st.integers(2, 40))
    @settings(max_examples=40, deadline=None)
    def test_property_projection_counts_everything(self, seed, m):
        rng = np.random.default_rng(seed)
        values = np.sort(rng.choice(1000, size=m, replace=False)).astype(float)
        dom = ValueDomain(values, np.ones(m, dtype=np.int64))
        sample = rng.choice(values, size=50)
        freq = dom.project_frequencies(sample)
        assert freq.sum() == 50
        # Every counted position actually appears in the sample.
        counted = set(values[freq > 0].tolist())
        assert counted == set(sample.tolist())
