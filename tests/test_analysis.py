"""Report aggregation from benchmark CSVs."""

from pathlib import Path

import pytest

from repro.eval.analysis import REPORT_SECTIONS, build_report
from repro.eval.reporting import write_csv


class TestBuildReport:
    def test_renders_available_sections(self, tmp_path):
        write_csv(tmp_path / "fig01_motivation.csv",
                  ["dataset", "t"], [["a", 1], ["b", 2]])
        text = build_report(tmp_path)
        assert "# Benchmark results" in text
        assert "| dataset | t |" in text
        assert "| a | 1 |" in text
        assert "_not yet run_" in text  # other sections missing

    def test_writes_output_file(self, tmp_path):
        write_csv(tmp_path / "abl_zipf.csv", ["s"], [[0.5]])
        out = tmp_path / "RESULTS.md"
        build_report(tmp_path, output=out)
        assert out.exists()
        assert "Ablation — workload skew" in out.read_text()

    def test_missing_section_list(self, tmp_path):
        text = build_report(tmp_path)
        assert "_missing:" in text
        for name, _ in REPORT_SECTIONS:
            assert name in text

    def test_empty_csv_rejected(self, tmp_path):
        (tmp_path / "fig14_k.csv").write_text("")
        with pytest.raises(ValueError):
            build_report(tmp_path)

    def test_real_results_dir_if_present(self):
        results = Path(__file__).parent.parent / "benchmarks" / "results"
        if not results.exists():
            pytest.skip("benchmarks not yet run")
        text = build_report(results)
        assert "Figure 11" in text

    def test_json_extension_sections_survive_rebuild(self, tmp_path):
        # Regression: the kernel/serve extension results are JSON, not
        # CSV — regenerating the report must render them, not drop them.
        import json

        (tmp_path / "BENCH_engine.json").write_text(json.dumps({
            "per_query": {"queries_per_s": 20.0},
            "batched": {"queries_per_s": 120.0},
            "speedup": 6.0,
            "kernels": {"tau": 8, "runs": {
                "decode": {"queries_per_s": 47.0, "speedup_vs_decode": 1.0},
                "numpy": {"queries_per_s": 109.0, "speedup_vs_decode": 2.3},
            }},
        }))
        run = {
            "achieved_qps": 100.0, "offered_qps": 0.0,
            "latency_p50_ms": 5.0, "latency_p99_ms": 9.0,
            "mean_batch_size": 32.0, "offered_fraction": 1.0,
        }
        (tmp_path / "BENCH_serve.json").write_text(json.dumps({
            "saturating": {"batch1": run, "batch64": run},
            "microbatch_speedup": 6.6,
            "load_curve": [run],
        }))
        text = build_report(tmp_path)
        assert "Extension — bound kernels (BENCH_engine.json)" in text
        assert "| numpy | 109.0 | 2.30x |" in text
        assert "Extension — serving layer (BENCH_serve.json)" in text
        assert "6.6x" in text and "| batch64 |" in text


class TestC2LSHT2:
    def test_t2_never_enlarges_candidates(self):
        import numpy as np

        from repro.lsh.c2lsh import C2LSHIndex, C2LSHParams

        rng = np.random.default_rng(5)
        centers = rng.uniform(0, 150, size=(3, 10))
        pts = np.concatenate(
            [c + rng.normal(scale=4, size=(200, 10)) for c in centers]
        )
        plain = C2LSHIndex(pts, C2LSHParams(use_t2=False), seed=1)
        with_t2 = C2LSHIndex(pts, C2LSHParams(use_t2=True), seed=1)
        for qi in (0, 150, 420):
            q = pts[qi] + 0.05
            c_plain = plain.candidates(q, 5)
            c_t2 = with_t2.candidates(q, 5)
            assert len(c_t2) <= len(c_plain)
            # T2 only stops the radius expansion; whatever it returns is a
            # subset of some earlier round's colliders, so the near point
            # itself must still be found.
            assert qi in c_t2
