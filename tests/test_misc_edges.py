"""Grab-bag edge cases across modules (CLI paths, dataclass edges)."""

import numpy as np
import pytest

from repro.cli import main
from repro.core.histogram import Histogram
from repro.core.maintenance import SlidingWindowWorkload
from repro.data.datasets import Dataset
from repro.data.workload import QueryLog, generate_query_log


class TestCLIBudgetPath:
    def test_explicit_cache_kb(self, capsys):
        rc = main([
            "experiment", "--dataset", "tiny", "--scale", "0.2",
            "--method", "HC-W", "--tau", "4", "--k", "3", "--cache-kb", "8",
        ])
        assert rc == 0
        assert "HC-W" in capsys.readouterr().out

    def test_linear_index_variant(self, capsys):
        rc = main([
            "experiment", "--dataset", "tiny", "--scale", "0.15",
            "--method", "HC-D", "--tau", "4", "--k", "3", "--index", "linear",
        ])
        assert rc == 0


class TestDatasetEdges:
    def test_from_points_already_discrete(self):
        pts = np.rint(np.random.default_rng(0).uniform(0, 15, (50, 4)))
        ds = Dataset.from_points(
            "d", pts, value_bits=4, already_discrete=True,
            pool_size=5, workload_size=10, test_size=2,
        )
        assert np.array_equal(ds.points, pts)

    def test_rejects_empty_points(self):
        with pytest.raises(ValueError):
            Dataset(name="x", points=np.empty((0, 3)))

    def test_rejects_1d_points(self):
        with pytest.raises(ValueError):
            Dataset(name="x", points=np.zeros(5))


class TestQueryLogEdges:
    def test_out_of_range_test_idx(self):
        pool = np.zeros((3, 2))
        with pytest.raises(ValueError):
            QueryLog(pool, np.array([0]), np.array([7]))

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            QueryLog(np.empty((0, 2)), np.array([]), np.array([]))

    def test_pool_larger_than_dataset_clamps(self):
        pts = np.random.default_rng(0).normal(size=(10, 2))
        log = generate_query_log(pts, pool_size=500, workload_size=20,
                                 test_size=5, seed=0)
        assert len(log.pool) == 10


class TestWindowCopySemantics:
    def test_recorded_queries_are_copies(self):
        window = SlidingWindowWorkload(capacity=3)
        q = np.array([1.0, 2.0])
        window.record(q)
        q[0] = 99.0
        assert window.queries()[0, 0] == 1.0


class TestHistogramEdges:
    def test_covers_false_outside_buckets(self):
        hist = Histogram(np.array([0.0, 10.0]), np.array([5.0, 15.0]))
        # 7.0 falls in the gap between buckets.
        assert not hist.covers(np.array([7.0]))[0]
        assert hist.covers(np.array([3.0]))[0]

    def test_widths_and_interval_consistency(self):
        hist = Histogram(np.array([0.0, 10.0]), np.array([5.0, 15.0]))
        assert hist.widths.tolist() == [5.0, 5.0]
        assert hist.interval(0) == (0.0, 5.0)
