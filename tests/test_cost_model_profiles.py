"""The empirical distance-profile estimator of the cost model."""

import numpy as np
import pytest

from repro.core.cost_model import CostModel


def _model_with_profiles(profiles, **kwargs):
    defaults = dict(
        dim=16,
        value_span=255.0,
        d_max=100.0,
        candidate_frequencies=np.ones(100),
        avg_candidates=50.0,
        distance_profiles=tuple(np.sort(np.asarray(p, float)) for p in profiles),
    )
    defaults.update(kwargs)
    return CostModel(**defaults)


class TestValidationMessages:
    def test_negative_value_span_gets_its_own_message(self):
        """Regression: a negative value_span was reported as 'dim and
        d_max must be positive', pointing at the wrong arguments."""
        with pytest.raises(ValueError, match="value_span must be non-negative"):
            _model_with_profiles([], value_span=-1.0)

    def test_dim_dmax_message_names_the_culprits(self):
        with pytest.raises(ValueError, match="dim and d_max must be positive"):
            _model_with_profiles([], d_max=0.0)
        with pytest.raises(ValueError, match="dim and d_max must be positive"):
            _model_with_profiles([], dim=0)

    def test_zero_value_span_allowed(self):
        model = _model_with_profiles([], value_span=0.0)
        assert model.rho_refine_equiwidth(4) == 0.0


class TestRhoRefineProfile:
    def test_none_without_profiles(self):
        model = _model_with_profiles([])
        assert model.rho_refine_profile(5.0) is None

    def test_zero_eps_refines_nothing_beyond_k(self):
        # 10 candidates at distinct distances; eps=0 -> only the k results
        # fall within dist_k, so the refinement fraction is 0.
        model = _model_with_profiles([np.arange(1, 11)])
        assert model.rho_refine_profile(0.0, k=3) == pytest.approx(0.0)

    def test_huge_eps_refines_everything(self):
        model = _model_with_profiles([np.arange(1, 11)])
        out = model.rho_refine_profile(1e9, k=3)
        assert out == pytest.approx((10 - 3) / 10)

    def test_interpolates_between(self):
        # dists 1..10, k=2 -> dist_k = 2; eps=3.5 covers dists <= 5.5,
        # i.e. 5 candidates; beyond the 2 results: 3 of 10.
        model = _model_with_profiles([np.arange(1, 11)])
        assert model.rho_refine_profile(3.5, k=2) == pytest.approx(0.3)

    def test_averages_over_queries(self):
        model = _model_with_profiles([np.arange(1, 11), np.arange(1, 11) * 100])
        # Query 1: eps=3.5 -> 0.3 as above; query 2: eps covers nothing
        # beyond the k results -> 0.0.
        assert model.rho_refine_profile(3.5, k=2) == pytest.approx(0.15)

    def test_negative_eps_clamps_at_zero(self):
        """Regression: a negative error norm pushed the searchsorted cut
        below the k results and the ratio went negative; it must clamp
        at 0 (a ratio of candidates cannot be negative)."""
        model = _model_with_profiles([np.arange(1, 11)])
        assert model.rho_refine_profile(-5.0, k=3) == 0.0
        # A tie run at dist_k with a tiny eps is the organic variant:
        # the cut may fall inside the ties, still never below 0.
        tied = _model_with_profiles([[1.0, 2.0, 2.0, 2.0, 5.0, 9.0]])
        assert tied.rho_refine_profile(0.0, k=4) >= 0.0

    def test_monotone_in_eps(self):
        rng = np.random.default_rng(0)
        model = _model_with_profiles([np.sort(rng.uniform(0, 100, 50))])
        values = [model.rho_refine_profile(e, k=5) for e in (0, 5, 20, 80, 200)]
        assert values == sorted(values)

    def test_estimate_io_prefers_profiles(self):
        with_profiles = _model_with_profiles([np.arange(1, 101)])
        without = CostModel(
            dim=16, value_span=255.0, d_max=100.0,
            candidate_frequencies=np.ones(100), avg_candidates=50.0,
        )
        # Same cache/tau; the numbers differ because the sources differ.
        a = with_profiles.estimate_io_equiwidth(1 << 16, 6)
        b = without.estimate_io_equiwidth(1 << 16, 6)
        assert a >= 0 and b >= 0

    def test_estimator_is_conservative_on_uniform_profiles(self):
        """On uniform distance profiles, the profile estimate is at most
        the Theorem-3 closed form (which assumed uniformity to bound)."""
        rng = np.random.default_rng(1)
        d_max = 200.0
        profiles = [np.sort(rng.uniform(0, d_max, 200)) for _ in range(20)]
        model = _model_with_profiles(profiles, d_max=d_max)
        for tau in (4, 6, 8):
            eps = np.sqrt(model.dim) * model.value_span / 2**tau
            emp = model.rho_refine_profile(eps, k=10)
            closed = model.rho_refine_equiwidth(tau)
            assert emp <= closed + 0.1
