"""Cache maintenance: sliding windows and periodic rebuilds (§3.5)."""

import numpy as np
import pytest

from repro.core.maintenance import CacheMaintainer, SlidingWindowWorkload
from repro.core.search import CachedKNNSearch
from repro.data.synthetic import clustered_dataset
from repro.data.workload import generate_query_log
from repro.index.linear_scan import LinearScanIndex
from repro.storage.pointfile import PointFile


@pytest.fixture(scope="module")
def world():
    points = clustered_dataset(800, 12, n_clusters=4, value_bits=8, seed=13)
    return points, LinearScanIndex(len(points))


class TestSlidingWindow:
    def test_capacity_bound(self):
        window = SlidingWindowWorkload(capacity=5)
        for i in range(9):
            window.record(np.full(3, float(i)))
        assert len(window) == 5
        assert window.queries()[0, 0] == 4.0  # oldest retained

    def test_empty_window_raises(self):
        with pytest.raises(ValueError):
            SlidingWindowWorkload().queries()

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            SlidingWindowWorkload(capacity=0)


class TestCacheMaintainer:
    def test_rebuild_produces_working_cache(self, world):
        points, index = world
        maintainer = CacheMaintainer(
            index, points, k=5, tau=5, cache_bytes=40_000
        )
        log = generate_query_log(points, pool_size=30, workload_size=150,
                                 test_size=10, seed=1)
        for query in log.workload:
            maintainer.observe(query)
        report = maintainer.rebuild()
        assert report.window_size == 150
        assert report.cache_items > 0
        assert maintainer.cache is not None
        # The rebuilt cache serves queries correctly.
        searcher = CachedKNNSearch(index, PointFile(points), maintainer.cache)
        result = searcher.search(log.test[0], 5)
        d = np.linalg.norm(points - log.test[0], axis=1)
        kth = np.sort(d)[4]
        assert np.all(d[result.ids] <= kth + 1e-9)

    def test_auto_rebuild_period(self, world):
        points, index = world
        maintainer = CacheMaintainer(
            index, points, k=3, tau=4, cache_bytes=20_000, rebuild_every=25
        )
        triggered = sum(
            maintainer.observe(points[i % len(points)]) for i in range(60)
        )
        assert triggered == 2
        assert maintainer.rebuilds == 2

    def test_rebuild_adapts_to_shifted_workload(self, world):
        """After the query distribution moves, a rebuild restores hits."""
        points, index = world
        maintainer = CacheMaintainer(
            index, points, k=5, tau=5, cache_bytes=30_000,
            window=SlidingWindowWorkload(capacity=100),
        )
        log_a = generate_query_log(points, pool_size=20, workload_size=100,
                                   test_size=10, seed=2)
        for query in log_a.workload:
            maintainer.observe(query)
        maintainer.rebuild()
        cache_a = maintainer.cache

        # Phase shift: a different pool of popular queries.
        log_b = generate_query_log(points, pool_size=20, workload_size=100,
                                   test_size=10, seed=99)
        for query in log_b.workload:
            maintainer.observe(query)
        maintainer.rebuild()
        cache_b = maintainer.cache

        def hit_ratio(cache, queries):
            searcher = CachedKNNSearch(index, PointFile(points), cache)
            return float(np.mean(
                [searcher.search(q, 5).stats.hit_ratio for q in queries]
            ))

        stale = hit_ratio(cache_a, log_b.test)
        fresh = hit_ratio(cache_b, log_b.test)
        assert fresh >= stale

    def test_validation(self, world):
        points, index = world
        with pytest.raises(ValueError):
            CacheMaintainer(index, points, k=0, tau=4, cache_bytes=100)
        with pytest.raises(ValueError):
            CacheMaintainer(index, points, k=3, tau=0, cache_bytes=100)
