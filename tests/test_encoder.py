"""Point encoders: code geometry and rectangle containment."""

import numpy as np
import pytest

from repro.core.builders import build_equidepth, build_knn_optimal
from repro.core.domain import ValueDomain
from repro.core.encoder import (
    ExactEncoder,
    GlobalHistogramEncoder,
    IndividualHistogramEncoder,
)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(2)
    return np.rint(rng.uniform(0, 255, size=(300, 10)))


class TestGlobalEncoder:
    def test_geometry(self, points):
        dom = ValueDomain.from_points(points)
        hist = build_equidepth(dom, 16)
        enc = GlobalHistogramEncoder(hist, points.shape[1])
        assert enc.n_fields == 10
        assert enc.bits == 4
        assert enc.bits_per_point == 40

    def test_rectangles_contain_points(self, points):
        dom = ValueDomain.from_points(points)
        hist = build_equidepth(dom, 16)
        enc = GlobalHistogramEncoder(hist, points.shape[1])
        codes = enc.encode(points)
        lo, hi = enc.rectangles(codes)
        assert np.all(lo <= points)
        assert np.all(points <= hi)

    def test_dimension_check(self, points):
        dom = ValueDomain.from_points(points)
        enc = GlobalHistogramEncoder(build_equidepth(dom, 4), 10)
        with pytest.raises(ValueError):
            enc.encode(points[:, :5])

    def test_codes_below_bucket_count(self, points):
        dom = ValueDomain.from_points(points)
        hist = build_equidepth(dom, 8)
        enc = GlobalHistogramEncoder(hist, 10)
        assert enc.encode(points).max() < hist.num_buckets


class TestIndividualEncoder:
    def _encoder(self, points):
        hists = []
        for j in range(points.shape[1]):
            dom = ValueDomain.from_column(points[:, j])
            hists.append(build_equidepth(dom, 8))
        return IndividualHistogramEncoder(hists)

    def test_rectangles_contain_points(self, points):
        enc = self._encoder(points)
        codes = enc.encode(points)
        lo, hi = enc.rectangles(codes)
        assert np.all(lo <= points)
        assert np.all(points <= hi)

    def test_bits_is_max_over_dimensions(self, points):
        doms = [ValueDomain.from_column(points[:, j]) for j in range(3)]
        hists = [
            build_equidepth(doms[0], 4),
            build_equidepth(doms[1], 16),
            build_equidepth(doms[2], 2),
        ]
        enc = IndividualHistogramEncoder(hists)
        assert enc.bits == 4
        assert enc.dim == 3

    def test_per_dimension_knn_optimal(self, points):
        hists = []
        for j in range(points.shape[1]):
            dom = ValueDomain.from_column(points[:, j])
            fprime = np.ones(dom.size)
            hists.append(build_knn_optimal(dom, fprime, 8))
        enc = IndividualHistogramEncoder(hists)
        codes = enc.encode(points)
        lo, hi = enc.rectangles(codes)
        assert np.all((lo <= points) & (points <= hi))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            IndividualHistogramEncoder([])


class TestExactEncoder:
    def test_identity_rectangles(self, points):
        enc = ExactEncoder(10, value_bits=8)
        codes = enc.encode(points)
        lo, hi = enc.rectangles(codes)
        assert np.array_equal(lo, points)
        assert np.array_equal(lo, hi)

    def test_rejects_overflow(self):
        enc = ExactEncoder(2, value_bits=4)
        with pytest.raises(ValueError):
            enc.encode(np.array([[20.0, 0.0]]))
