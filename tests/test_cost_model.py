"""Cost model (Section 4): theorems hold, estimates track measurements."""

import numpy as np
import pytest

from repro.core.builders import build_equiwidth
from repro.core.cost_model import (
    CostModel,
    optimal_tau,
    optimal_tau_encoder,
    packed_row_bytes,
)
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder


def _model(n=1000, dim=16, span=255.0, d_max=120.0, avg_c=200.0, seed=0):
    rng = np.random.default_rng(seed)
    freqs = np.sort(rng.zipf(1.3, size=n).astype(float))[::-1]
    return CostModel(
        dim=dim,
        value_span=span,
        d_max=d_max,
        candidate_frequencies=freqs,
        avg_candidates=avg_c,
        lvalue_bits=32,
    )


class TestHitRatio:
    def test_monotone_in_items(self):
        model = _model()
        hits = [model.hit_ratio(n) for n in (0, 10, 100, 1000, 5000)]
        assert hits == sorted(hits)
        assert hits[0] == 0.0
        assert hits[-1] == pytest.approx(1.0)

    def test_items_for_code_geometry(self):
        model = _model(dim=16)
        small = model.items_for(1 << 20, 4, 16)
        big = model.items_for(1 << 20, 16, 16)
        assert small > big

    def test_exact_items(self):
        model = _model(dim=16)
        assert model.exact_items_for(640) == 10  # 16 dims x 4 bytes

    def test_theorem1_bound(self):
        model = _model()
        # With tau = Lvalue the bound equals the exact hit ratio.
        assert model.theorem1_bound(32, 0.5) == pytest.approx(0.5)
        # Smaller codes allow proportionally more items.
        assert model.theorem1_bound(8, 0.2) == pytest.approx(0.8)
        assert model.theorem1_bound(1, 0.9) == 1.0

    def test_theorem1_holds_for_hff(self):
        """rho_hit <= (Lvalue / tau) * rho*_hit on the actual HFF curve."""
        model = _model()
        cache_bytes = 4096
        exact_hit = model.hit_ratio(model.exact_items_for(cache_bytes))
        for tau in (2, 4, 8, 16):
            items = model.items_for(cache_bytes, tau, model.dim)
            assert model.hit_ratio(items) <= model.theorem1_bound(tau, exact_hit) + 1e-9


class TestRhoRefine:
    def test_equiwidth_monotone_in_tau(self):
        model = _model()
        vals = [model.rho_refine_equiwidth(t) for t in range(1, 16)]
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))
        assert vals[0] <= 1.0

    def test_encoder_variant_matches_closed_form_scale(self):
        rng = np.random.default_rng(1)
        points = np.rint(rng.uniform(0, 255, size=(400, 16)))
        dom = ValueDomain.from_points(points)
        model = _model()
        tau = 4
        enc = GlobalHistogramEncoder(build_equiwidth(dom, 2**tau), 16)
        measured = model.rho_refine_encoder(enc, points[:50])
        closed = model.rho_refine_equiwidth(tau)
        # Closed form is an upper bound on the measured error ratio.
        assert measured <= closed + 1e-9

    def test_rejects_bad_tau(self):
        with pytest.raises(ValueError):
            _model().rho_refine_equiwidth(0)


class TestEstimates:
    def test_crefine_limits(self):
        model = _model(avg_c=100.0)
        assert model.estimate_crefine(0.0, 0.5) == pytest.approx(100.0)
        assert model.estimate_crefine(1.0, 0.0) == pytest.approx(0.0)
        assert model.estimate_crefine(1.0, 1.0) == pytest.approx(100.0)

    def test_io_estimate_nonnegative(self):
        model = _model()
        for tau in range(1, 20):
            assert model.estimate_io_equiwidth(1 << 16, tau) >= 0


class TestOptimalTau:
    def test_interior_optimum(self):
        """Too-few bits hurt pruning; too-many hurt the hit ratio."""
        model = _model(n=5000, dim=64, avg_c=400.0, d_max=80.0)
        cache = 64 * 5000 // 4  # room for ~1/4 of the points at 8 bits
        best = optimal_tau(model, cache, tau_range=(1, 20))
        cost_best = model.estimate_io_equiwidth(cache, best)
        assert cost_best <= model.estimate_io_equiwidth(cache, 1)
        assert cost_best <= model.estimate_io_equiwidth(cache, 20)

    def test_range_validation(self):
        with pytest.raises(ValueError):
            optimal_tau(_model(), 1024, tau_range=(0, 4))

    def test_encoder_tuner(self):
        rng = np.random.default_rng(2)
        points = np.rint(rng.uniform(0, 255, size=(500, 16)))
        dom = ValueDomain.from_points(points)
        model = _model()

        def factory(tau):
            return GlobalHistogramEncoder(build_equiwidth(dom, 2**tau), 16)

        best = optimal_tau_encoder(
            model, 2048, factory, points[:30], tau_range=(2, 8)
        )
        assert 2 <= best <= 8


class TestPackedRowBytes:
    def test_word_rounding(self):
        assert packed_row_bytes(150, 10) == 192
        assert packed_row_bytes(1, 8) == 8
