"""Histogram construction: heuristics, DPs, and the Algorithm-2 optimum."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builders import (
    build_equidepth,
    build_equiwidth,
    build_histogram,
    build_knn_optimal,
    build_knn_optimal_reference,
    build_voptimal,
    knn_optimal_bruteforce,
)
from repro.core.domain import ValueDomain
from repro.core.metrics import m3, msse


def _domain(values, counts=None):
    values = np.asarray(values, dtype=np.float64)
    if counts is None:
        counts = np.ones(len(values), dtype=np.int64)
    return ValueDomain(values, np.asarray(counts))


class TestEquiWidth:
    def test_buckets_have_equal_width(self):
        dom = _domain([0, 1, 5, 8, 16])
        hist = build_equiwidth(dom, 4)
        assert np.allclose(hist.widths, 4.0)
        assert hist.num_buckets == 4

    def test_covers_domain(self):
        dom = _domain(np.arange(100))
        hist = build_equiwidth(dom, 8)
        assert hist.covers(dom.values).all()

    def test_single_value_domain(self):
        dom = _domain([3.5])
        hist = build_equiwidth(dom, 4)
        assert hist.num_buckets == 1
        assert hist.lookup(np.array([3.5]))[0] == 0

    def test_frequencies_sum_to_total(self):
        dom = _domain([0, 1, 5, 8, 16], [2, 3, 4, 5, 6])
        hist = build_equiwidth(dom, 4)
        assert hist.frequencies.sum() == 20


class TestEquiDepth:
    def test_balanced_mass(self):
        dom = _domain(np.arange(64))
        hist = build_equidepth(dom, 8)
        assert hist.num_buckets == 8
        assert np.all(hist.frequencies == 8)

    def test_skewed_mass_gets_tight_buckets(self):
        counts = np.ones(20, dtype=np.int64)
        counts[0] = 1000
        dom = _domain(np.arange(20), counts)
        hist = build_equidepth(dom, 4)
        # The heavy value must sit alone in its bucket.
        code = hist.lookup(np.array([0.0]))[0]
        assert hist.widths[code] == 0.0

    def test_identity_when_enough_buckets(self):
        dom = _domain([1, 2, 3])
        hist = build_equidepth(dom, 8)
        assert hist.num_buckets == 3
        assert np.all(hist.widths == 0)


class TestVOptimal:
    def test_beats_equiwidth_on_sse(self):
        rng = np.random.default_rng(0)
        counts = np.concatenate([rng.integers(90, 110, 30), rng.integers(1, 5, 30)])
        dom = _domain(np.arange(60), counts)
        hv = build_voptimal(dom, 6)
        hw = build_equiwidth(dom, 6)
        assert msse(hv, dom) <= msse(hw, dom) + 1e-9

    def test_respects_bucket_budget(self):
        dom = _domain(np.arange(50))
        assert build_voptimal(dom, 5).num_buckets <= 5

    def test_zero_sse_with_constant_frequencies(self):
        dom = _domain(np.arange(10), np.full(10, 7))
        assert msse(build_voptimal(dom, 2), dom) == pytest.approx(0.0)


class TestKnnOptimal:
    def test_paper_figure6_example(self):
        """The worked example of Section 3.3: data {3,4,10,12,22,24,30,31},
        q=17, k=2 => QR={12,22}; the optimal histogram isolates 12 and 22
        in zero-width buckets and achieves metric 0."""
        dom = _domain([3, 4, 10, 12, 22, 24, 30, 31])
        fprime = np.zeros(dom.size)
        fprime[dom.index_of([12.0, 22.0])] = 1
        hist = build_knn_optimal(dom, fprime, 4)
        assert m3(hist, dom, fprime) == pytest.approx(0.0)
        c12 = hist.lookup(np.array([12.0]))[0]
        c22 = hist.lookup(np.array([22.0]))[0]
        assert hist.widths[c12] == 0.0
        assert hist.widths[c22] == 0.0

    def test_matches_reference_implementation(self):
        rng = np.random.default_rng(1)
        for trial in range(5):
            m = int(rng.integers(5, 40))
            dom = _domain(np.sort(rng.choice(500, size=m, replace=False)))
            fprime = rng.integers(0, 10, size=m).astype(float)
            B = int(rng.integers(2, 8))
            fast = build_knn_optimal(dom, fprime, B)
            ref = build_knn_optimal_reference(dom, fprime, B)
            assert m3(fast, dom, fprime) == pytest.approx(
                m3(ref, dom, fprime)
            ), f"trial {trial}"

    def test_identity_when_buckets_cover_values(self):
        dom = _domain([1, 5, 9])
        hist = build_knn_optimal(dom, np.ones(3), 4)
        assert np.all(hist.widths == 0)

    def test_rejects_misaligned_fprime(self):
        dom = _domain([1, 2, 3])
        with pytest.raises(ValueError):
            build_knn_optimal(dom, np.ones(5), 2)

    def test_rejects_negative_fprime(self):
        dom = _domain([1, 2, 3])
        with pytest.raises(ValueError):
            build_knn_optimal(dom, np.array([1.0, -1.0, 0.0]), 2)

    def test_coarsened_dp_stays_close_to_exact(self):
        rng = np.random.default_rng(3)
        values = np.sort(rng.choice(5000, size=600, replace=False))
        fprime = rng.pareto(1.5, size=600)
        dom = _domain(values)
        exact = build_knn_optimal(dom, fprime, 16, max_positions=600)
        coarse = build_knn_optimal(dom, fprime, 16, max_positions=128)
        exact_cost = m3(exact, dom, fprime)
        coarse_cost = m3(coarse, dom, fprime)
        assert coarse_cost >= exact_cost - 1e-9
        assert coarse_cost <= 4.0 * exact_cost + 1e-9

    @given(
        values=st.lists(st.integers(0, 200), min_size=3, max_size=11, unique=True),
        freqs=st.lists(st.integers(0, 9), min_size=11, max_size=11),
        n_buckets=st.integers(2, 5),
    )
    @settings(max_examples=40, deadline=None)
    def test_property_dp_is_optimal(self, values, freqs, n_buckets):
        """The vectorized DP matches exhaustive search on tiny domains."""
        values = np.sort(np.asarray(values, dtype=np.float64))
        dom = _domain(values)
        fprime = np.asarray(freqs[: len(values)], dtype=np.float64)
        hist = build_knn_optimal(dom, fprime, n_buckets)
        _, best = knn_optimal_bruteforce(dom, fprime, n_buckets)
        assert m3(hist, dom, fprime) == pytest.approx(best)

    def test_hco_never_worse_than_alternatives_on_m3(self, micro_domain):
        rng = np.random.default_rng(5)
        fprime = rng.integers(0, 6, size=micro_domain.size).astype(float)
        B = 16
        hco = build_knn_optimal(micro_domain, fprime, B)
        for other in (
            build_equiwidth(micro_domain, B),
            build_equidepth(micro_domain, B),
            build_voptimal(micro_domain, B),
        ):
            assert m3(hco, micro_domain, fprime) <= m3(
                other, micro_domain, fprime
            ) + 1e-9


class TestVOptimalOptimality:
    @given(
        values=st.lists(st.integers(0, 100), min_size=3, max_size=10, unique=True),
        counts=st.lists(st.integers(0, 20), min_size=10, max_size=10),
        n_buckets=st.integers(2, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_dp_matches_exhaustive_sse(self, values, counts, n_buckets):
        """The V-optimal DP reaches the exhaustive-search SSE optimum."""
        import itertools

        values = np.sort(np.asarray(values, dtype=np.float64))
        counts_arr = np.asarray(counts[: len(values)], dtype=np.int64)
        dom = _domain(values, counts_arr)
        hist = build_voptimal(dom, n_buckets)
        got = msse(hist, dom)

        def sse(starts):
            bounds = list(starts) + [dom.size]
            total = 0.0
            for s, nxt in zip(bounds[:-1], bounds[1:]):
                block = counts_arr[s:nxt].astype(float)
                total += float(np.sum((block - block.mean()) ** 2))
            return total

        best = sse((0,))
        for n_cuts in range(1, min(n_buckets - 1, dom.size - 1) + 1):
            for cuts in itertools.combinations(range(1, dom.size), n_cuts):
                best = min(best, sse((0,) + cuts))
        assert got == pytest.approx(best)


class TestDispatch:
    def test_build_histogram_names(self):
        dom = _domain(np.arange(20))
        fprime = np.ones(20)
        for name in ("equiwidth", "equidepth", "voptimal"):
            assert build_histogram(name, dom, 4).num_buckets <= 4
        assert build_histogram("knn-optimal", dom, 4, fprime).num_buckets <= 4

    def test_knn_optimal_requires_fprime(self):
        with pytest.raises(ValueError):
            build_histogram("knn-optimal", _domain([1, 2]), 2)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            build_histogram("bogus", _domain([1, 2]), 2)

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_nonpositive_buckets(self, bad):
        with pytest.raises(ValueError):
            build_equiwidth(_domain([1, 2]), bad)
