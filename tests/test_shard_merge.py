"""Property tests for the exact top-k merges (satellite of the shard PR).

Randomized instances come from the seeded generators in ``conftest.py``
(``shard_merge_cases``); every case is reproducible from the seed named
in the test.  Properties:

* merging per-shard lists equals the top-k of the concatenation;
* merging each shard's *own truncated top-k* changes nothing (shards
  may pre-truncate without affecting the global answer);
* planted distance ties break exactly like the engine: ``(d, id asc)``
  on the tree path, heap-eviction ``(d asc, id desc)`` selection with
  ``(d, id, exact)`` presentation on the candidate path;
* ``k`` larger than any shard (or the whole input) neither pads nor
  truncates wrongly.
"""

from __future__ import annotations

import heapq

import numpy as np
import pytest

from repro.shard.merge import (
    merge_candidate_results,
    merge_topk,
    merge_tree_results,
)


def reference_topk(
    id_arrays, dist_arrays, k
) -> tuple[np.ndarray, np.ndarray]:
    """Top-k of the concatenation under (distance asc, id asc), brute force."""
    pairs = sorted(
        (float(d), int(i))
        for ids, dists in zip(id_arrays, dist_arrays)
        for i, d in zip(ids, dists)
    )[:k]
    return (
        np.array([i for _, i in pairs], dtype=np.int64),
        np.array([d for d, _ in pairs], dtype=np.float64),
    )


def reference_candidate_merge(confirmed_ids, confirmed_ub, shard_ids,
                              shard_dists, k):
    """Replays the refinement heap: entries ``(-d, id)``, evict smallest."""
    heap: list[tuple] = []
    entries = [
        (float(d), int(i), False)
        for i, d in zip(confirmed_ids, confirmed_ub)
    ] + [
        (float(d), int(i), True)
        for ids, dists in zip(shard_ids, shard_dists)
        for i, d in zip(ids, dists)
    ]
    for dist, point_id, exact in entries:
        heapq.heappush(heap, (-dist, point_id, exact))
        if len(heap) > k:
            heapq.heappop(heap)
    final = sorted((-negd, i, exact) for negd, i, exact in heap)
    ids = np.array([i for _, i, _ in final], dtype=np.int64)
    dists = np.array([d for d, _, _ in final], dtype=np.float64)
    exact = np.array([e for _, _, e in final], dtype=bool)
    return ids, dists, exact


# ----------------------------------------------------------------------
# Tree-rule merge (d asc, id asc)
# ----------------------------------------------------------------------
def test_merge_topk_equals_global_topk(shard_merge_cases) -> None:
    for ids, dists, k in shard_merge_cases(seed=101, n_cases=200):
        got_ids, got_dists = merge_topk(ids, dists, k)
        want_ids, want_dists = reference_topk(ids, dists, k)
        assert np.array_equal(got_ids, want_ids), (ids, dists, k)
        assert np.array_equal(got_dists, want_dists)


def test_merge_topk_of_pretruncated_shards(shard_merge_cases) -> None:
    """Each shard may send only its own top-k; the merge is unchanged."""
    for ids, dists, k in shard_merge_cases(seed=102, n_cases=200):
        truncated_ids, truncated_dists = [], []
        for shard_ids, shard_dists in zip(ids, dists):
            local_ids, local_dists = merge_topk(
                [shard_ids], [shard_dists], k
            )
            truncated_ids.append(local_ids)
            truncated_dists.append(local_dists)
        got = merge_topk(truncated_ids, truncated_dists, k)
        want = merge_topk(ids, dists, k)
        assert np.array_equal(got[0], want[0])
        assert np.array_equal(got[1], want[1])


def test_merge_topk_planted_tie_prefers_smaller_id() -> None:
    ids = [np.array([7, 3]), np.array([5])]
    dists = [np.array([1.0, 2.0]), np.array([1.0])]
    got_ids, got_dists = merge_topk(ids, dists, 2)
    assert got_ids.tolist() == [5, 7]
    assert got_dists.tolist() == [1.0, 1.0]


def test_merge_topk_k_exceeds_every_shard(shard_merge_cases) -> None:
    for ids, dists, k in shard_merge_cases(
        seed=103, n_cases=100, tiny_shards=True
    ):
        total = sum(len(a) for a in ids)
        big_k = total + 5
        got_ids, got_dists = merge_topk(ids, dists, big_k)
        assert len(got_ids) == total  # no padding, no truncation
        want_ids, _ = reference_topk(ids, dists, big_k)
        assert np.array_equal(got_ids, want_ids)


def test_merge_tree_results_is_topk_merge(shard_merge_cases) -> None:
    for ids, dists, k in shard_merge_cases(seed=104, n_cases=50):
        a = merge_tree_results(ids, dists, k)
        b = merge_topk(ids, dists, k)
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


def test_merge_topk_rejects_bad_k() -> None:
    with pytest.raises(ValueError):
        merge_topk([np.array([1])], [np.array([1.0])], 0)


# ----------------------------------------------------------------------
# Candidate-rule merge (heap eviction semantics)
# ----------------------------------------------------------------------
def test_candidate_merge_matches_heap_reference(shard_merge_cases) -> None:
    rng = np.random.default_rng(105)
    for ids, dists, k in shard_merge_cases(seed=106, n_cases=200):
        # Peel off a random prefix of shard 0 as the "confirmed" set.
        n_confirmed = int(rng.integers(0, len(ids[0]) + 1))
        confirmed_ids = ids[0][:n_confirmed]
        confirmed_ub = dists[0][:n_confirmed]
        shard_ids = [ids[0][n_confirmed:], *ids[1:]]
        shard_dists = [dists[0][n_confirmed:], *dists[1:]]
        got = merge_candidate_results(
            confirmed_ids, confirmed_ub, shard_ids, shard_dists, k
        )
        want = reference_candidate_merge(
            confirmed_ids, confirmed_ub, shard_ids, shard_dists, k
        )
        case = f"seed=106 k={k} confirmed={confirmed_ids}"
        assert np.array_equal(got[0], want[0]), case
        assert np.array_equal(got[1], want[1]), case
        assert np.array_equal(got[2], want[2]), case


def test_candidate_merge_boundary_tie_keeps_larger_id() -> None:
    """Heap eviction pops the smallest (-d, id) tuple: among entries
    tied at the cut-off distance the *larger* id survives."""
    got_ids, got_dists, _ = merge_candidate_results(
        np.empty(0, dtype=np.int64),
        np.empty(0),
        [np.array([2, 9]), np.array([4])],
        [np.array([5.0, 5.0]), np.array([5.0])],
        2,
    )
    assert got_ids.tolist() == [4, 9]  # id 2 evicted, presentation id-asc
    assert got_dists.tolist() == [5.0, 5.0]


def test_candidate_merge_confirmed_sorts_before_exact_on_full_tie() -> None:
    """Presentation order is (distance, id, exact): a confirmed entry
    (exact=False) precedes an exact one only via distance/id, never by
    provenance alone unless distance and id pattern allows it."""
    got_ids, _, got_exact = merge_candidate_results(
        np.array([3]),
        np.array([1.0]),
        [np.array([1, 8])],
        [np.array([1.0, 2.0])],
        3,
    )
    assert got_ids.tolist() == [1, 3, 8]
    assert got_exact.tolist() == [True, False, True]
