"""Runner details: the time model and Experiment plumbing."""

import numpy as np
import pytest

from repro.core.cache import CachePolicy
from repro.core.search import QueryStats
from repro.data.datasets import load_dataset
from repro.eval.runner import Experiment, summarize


def _stat(refine_pages, gen_pages, candidates=100, hits=50, pruned=20):
    return QueryStats(
        num_candidates=candidates,
        cache_hits=hits,
        pruned=pruned,
        confirmed=0,
        c_refine=candidates - pruned,
        refined_fetches=refine_pages,
        refine_page_reads=refine_pages,
        gen_page_reads=gen_pages,
    )


class TestSummarize:
    def test_time_model(self):
        stats = [_stat(10, 100), _stat(20, 200)]
        result = summarize(
            stats, "X", 8, 1 << 20, 10,
            read_latency_s=0.005, seq_read_latency_s=0.0002,
        )
        assert result.avg_refine_io == 15
        assert result.avg_gen_io == 150
        assert result.refine_time_s == pytest.approx(15 * 0.005)
        assert result.gen_time_s == pytest.approx(150 * 0.0002)
        assert result.response_time_s == pytest.approx(0.075 + 0.03)
        assert result.avg_io == 165

    def test_ratios(self):
        stats = [_stat(5, 10, candidates=100, hits=50, pruned=25)]
        result = summarize(stats, "X", 8, 0, 10, 0.005)
        assert result.hit_ratio == pytest.approx(0.5)
        assert result.prune_ratio == pytest.approx(0.5)  # 25 of 50 hits
        assert result.hit_times_prune == pytest.approx(0.25)

    def test_query_stats_properties(self):
        stat = _stat(5, 10, candidates=0, hits=0, pruned=0)
        assert stat.hit_ratio == 0.0
        assert stat.prune_ratio == 0.0


class TestExperimentPlumbing:
    @pytest.fixture(scope="class")
    def dataset(self):
        return load_dataset("tiny", seed=0, scale=0.3)

    def test_custom_queries(self, dataset):
        result = Experiment(
            dataset, method="HC-D", tau=4, cache_bytes=10_000
        ).run(queries=dataset.points[:3])
        assert result.num_queries == 3

    def test_requires_queries_or_log(self, dataset):
        bare = dataset.with_query_log(dataset.query_log)
        object.__setattr__(bare, "query_log", None)
        with pytest.raises(ValueError):
            Experiment(bare, method="HC-D").run()

    def test_policy_passthrough(self, dataset):
        result = Experiment(
            dataset, method="HC-D", tau=4, cache_bytes=10_000,
            policy=CachePolicy.LRU,
        ).run()
        # LRU starts empty: first-visit test queries mostly miss.
        assert result.hit_ratio <= 1.0

    def test_ordering_passthrough(self, dataset):
        result = Experiment(
            dataset, method="EXACT", cache_bytes=10_000, ordering="clustered"
        ).run()
        assert result.num_queries == len(dataset.query_log.test)

    def test_wall_time_recorded(self, dataset):
        result = Experiment(
            dataset, method="NO-CACHE", cache_bytes=0
        ).run()
        assert result.wall_time_s > 0

    def test_per_query_dropped_by_default(self, dataset):
        result = Experiment(
            dataset, method="HC-D", tau=4, cache_bytes=10_000
        ).run()
        assert result.per_query == ()

    def test_per_query_retained_on_request(self, dataset):
        result = Experiment(
            dataset, method="HC-D", tau=4, cache_bytes=10_000,
            keep_per_query=True,
        ).run()
        assert len(result.per_query) == result.num_queries

    def test_batched_matches_per_query_metrics(self, dataset):
        kwargs = dict(method="HC-O", tau=4, cache_bytes=10_000)
        seq = Experiment(dataset, **kwargs, keep_per_query=True).run()
        bat = Experiment(
            dataset, **kwargs, keep_per_query=True, batched=True
        ).run()
        assert bat.per_query == seq.per_query
        assert bat.avg_refine_io == seq.avg_refine_io
        assert bat.hit_ratio == seq.hit_ratio
