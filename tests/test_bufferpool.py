"""Buffer pool: LRU page semantics and the semantic-vs-page-cache story."""

import numpy as np
import pytest

from repro.core.builders import build_knn_optimal
from repro.core.cache import ApproximateCache, NoCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.search import CachedKNNSearch
from repro.index.linear_scan import LinearScanIndex
from repro.storage.bufferpool import BufferedPointFile, BufferPool
from repro.storage.iostats import QueryIOTracker
from repro.storage.pointfile import PointFile


class TestBufferPool:
    def test_lru_semantics(self):
        pool = BufferPool(2 * 4096)
        assert not pool.access(1)
        assert not pool.access(2)
        assert pool.access(1)       # hit, promotes 1
        assert not pool.access(3)   # evicts 2
        assert not pool.access(2)
        assert pool.stats().hits == 1
        assert pool.used_bytes == 2 * 4096

    def test_zero_capacity_never_hits(self):
        pool = BufferPool(0)
        assert not pool.access(1)
        assert not pool.access(1)
        assert pool.stats().hit_ratio == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BufferPool(-1)
        with pytest.raises(ValueError):
            BufferPool(4096, page_size=0)


class TestBufferedPointFile:
    @pytest.fixture()
    def world(self):
        rng = np.random.default_rng(41)
        points = np.rint(rng.uniform(0, 255, size=(256, 128)))  # 512 B/point
        return points

    def test_repeated_fetches_become_free(self, world):
        pf = PointFile(world, value_bytes=4)
        buffered = BufferedPointFile(pf, BufferPool(1 << 16))
        t1 = QueryIOTracker()
        buffered.fetch(np.arange(32), t1)
        t2 = QueryIOTracker()
        buffered.fetch(np.arange(32), t2)
        assert t1.page_reads > 0
        assert t2.page_reads == 0  # all resident now

    def test_page_size_mismatch_rejected(self, world):
        pf = PointFile(world, value_bytes=4)
        with pytest.raises(ValueError):
            BufferedPointFile(pf, BufferPool(1 << 16, page_size=8192))

    def test_search_pipeline_accepts_buffered_file(self, world):
        pf = BufferedPointFile(PointFile(world, value_bytes=4), BufferPool(1 << 16))
        searcher = CachedKNNSearch(LinearScanIndex(len(world)), pf, NoCache())
        q = world[3] + 0.2
        first = searcher.search(q, 5)
        second = searcher.search(q, 5)
        assert set(first.ids.tolist()) == set(second.ids.tolist())
        assert second.stats.refine_page_reads <= first.stats.refine_page_reads

    def test_semantic_cache_beats_page_cache_per_byte(self, world):
        """Same RAM budget: the paper's tau-bit cache covers more queries
        than a raw page cache (the quantitative reason the paper builds a
        semantic cache instead of re-enabling the OS cache)."""
        budget = 16 * 512  # room for 16 raw points' worth of pages
        # Page-cache configuration.
        page_pf = BufferedPointFile(
            PointFile(world, value_bytes=4), BufferPool(budget)
        )
        page_search = CachedKNNSearch(
            LinearScanIndex(len(world)), page_pf, NoCache()
        )
        # Semantic (HC-O) configuration under the same budget.
        dom = ValueDomain.from_points(world)
        enc = GlobalHistogramEncoder(
            build_knn_optimal(dom, dom.counts.astype(float), 64), world.shape[1]
        )
        sem_cache = ApproximateCache(enc, budget, len(world))
        sem_cache.populate(np.arange(sem_cache.max_items), world[: sem_cache.max_items])
        sem_search = CachedKNNSearch(
            LinearScanIndex(len(world)), PointFile(world, value_bytes=4), sem_cache
        )
        rng = np.random.default_rng(3)
        queries = world[rng.choice(len(world), 12, replace=False)] + 0.3
        page_io = sum(
            page_search.search(q, 5).stats.refine_page_reads for q in queries
        )
        sem_io = sum(
            sem_search.search(q, 5).stats.refine_page_reads for q in queries
        )
        assert sem_cache.max_items > 16  # covers more points than the pool
        assert sem_io < page_io
