"""Property tests of the full pipeline over randomized worlds.

The load-bearing invariant of the whole paper: adding *any* cache (any
histogram, any tau, any capacity) never changes the result of a kNN
search — it only changes how much I/O is spent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.builders import (
    build_equidepth,
    build_equiwidth,
    build_knn_optimal,
)
from repro.core.cache import ApproximateCache, CachePolicy, ExactCache
from repro.core.domain import ValueDomain
from repro.core.encoder import GlobalHistogramEncoder
from repro.core.search import CachedKNNSearch
from repro.index.linear_scan import LinearScanIndex
from repro.storage.pointfile import PointFile
from tests.conftest import assert_valid_knn


@st.composite
def worlds(draw):
    seed = draw(st.integers(0, 2**16))
    n = draw(st.integers(30, 180))
    d = draw(st.integers(2, 12))
    k = draw(st.integers(1, 8))
    tau = draw(st.integers(1, 6))
    builder = draw(st.sampled_from(["equiwidth", "equidepth", "knn-optimal"]))
    capacity_frac = draw(st.floats(0.0, 1.5))
    policy = draw(st.sampled_from([CachePolicy.HFF, CachePolicy.LRU]))
    return seed, n, d, k, tau, builder, capacity_frac, policy


@given(worlds())
@settings(max_examples=40, deadline=None)
def test_property_any_cache_preserves_results(world):
    seed, n, d, k, tau, builder, capacity_frac, policy = world
    rng = np.random.default_rng(seed)
    points = np.rint(rng.uniform(0, 255, size=(n, d)))
    domain = ValueDomain.from_points(points)
    if builder == "equiwidth":
        hist = build_equiwidth(domain, 2**tau)
    elif builder == "equidepth":
        hist = build_equidepth(domain, 2**tau)
    else:
        fprime = rng.integers(0, 5, size=domain.size).astype(float)
        hist = build_knn_optimal(domain, fprime, 2**tau)
    encoder = GlobalHistogramEncoder(hist, d)
    capacity = int(capacity_frac * n * 64)
    cache = ApproximateCache(encoder, capacity, n, policy=policy)
    if policy is CachePolicy.HFF:
        cache.populate(np.arange(n), points)
    searcher = CachedKNNSearch(LinearScanIndex(n), PointFile(points), cache)
    for qi in rng.choice(n, size=3, replace=False):
        query = points[qi] + rng.normal(scale=0.3, size=d)
        result = searcher.search(query, k)
        assert_valid_knn(points, query, k, result.ids)
        s = result.stats
        assert s.pruned + s.confirmed + s.c_refine == s.num_candidates
        assert s.refined_fetches <= s.c_refine


@given(st.integers(0, 2**16), st.integers(1, 6))
@settings(max_examples=25, deadline=None)
def test_property_exact_cache_is_never_worse_than_no_cache(seed, k):
    rng = np.random.default_rng(seed)
    points = np.rint(rng.uniform(0, 127, size=(120, 6)))
    cache = ExactCache(6, 1 << 16, len(points))
    cache.populate(np.arange(len(points)), points)
    cached = CachedKNNSearch(
        LinearScanIndex(len(points)), PointFile(points), cache
    )
    from repro.core.cache import NoCache

    plain = CachedKNNSearch(
        LinearScanIndex(len(points)), PointFile(points), NoCache()
    )
    query = points[0] + 0.5
    r_cached = cached.search(query, k)
    r_plain = plain.search(query, k)
    assert r_cached.stats.refine_page_reads <= r_plain.stats.refine_page_reads
    assert set(r_cached.ids.tolist()) == set(r_plain.ids.tolist()) or (
        # distance ties may legitimately swap equal-distance members
        np.isclose(
            sorted(np.linalg.norm(points[r_cached.ids] - query, axis=1))[-1],
            sorted(np.linalg.norm(points[r_plain.ids] - query, axis=1))[-1],
        )
    )
